//! Special functions backing the distribution implementations.
//!
//! Only what the crate actually needs: the error function (log-normal CDF),
//! its inverse (normal quantiles for confidence intervals), and the
//! log-gamma function (Weibull/Erlang moments). All approximations have
//! absolute error well below `1e-6`, which is far tighter than the
//! statistical noise of any experiment in the paper (500 recurrence
//! intervals per plotted point, §7).

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{-t²} dt`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation with maximum
/// absolute error `1.5e-7`, extended to negative arguments by oddness.
///
/// ```
/// let e = fd_stats::special::erf(1.0);
/// assert!((e - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 constants.
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;

    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// CDF of the standard normal distribution.
///
/// ```
/// assert!((fd_stats::special::std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// ```
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Uses the Acklam rational approximation (relative error below `1.15e-9`),
/// suitable for the confidence intervals reported by the experiment
/// harness.
///
/// # Panics
///
/// Panics if `p` is not in the open interval `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1), got {p}");

    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the high-precision CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural logarithm of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 7, n = 9), accurate to ~1e-13 over the
/// positive reals.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x)/Γ(a)` for `a > 0`, `x ≥ 0` — the CDF of the
/// Gamma(a, 1) distribution.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction for the
/// complement otherwise (the classic numerically stable split).
///
/// # Panics
///
/// Panics if `a ≤ 0` or `x < 0`.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && a.is_finite(), "regularized_gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "regularized_gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = x^a e^{-x} / Γ(a) · Σ x^n / (a(a+1)…(a+n)).
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum * (a * x.ln() - x - ln_gamma(a)).exp()).clamp(0.0, 1.0)
    } else {
        // Continued fraction for Q(a,x) = 1 − P(a,x) (modified Lentz).
        const TINY: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / TINY;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < TINY {
                d = TINY;
            }
            c = b + an / c;
            if c.abs() < TINY {
                c = TINY;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]` — the CDF of the Beta(a, b) distribution, and the
/// backbone of the binomial tail probabilities behind Clopper–Pearson
/// confidence intervals (`P[X ≤ k] = I_{1−p}(n−k, k+1)`).
///
/// Modified-Lentz continued fraction (Numerical Recipes `betacf`),
/// applied to whichever of `I_x(a,b)` / `1 − I_{1−x}(b,a)` converges
/// fastest.
///
/// # Panics
///
/// Panics if `a ≤ 0`, `b ≤ 0`, or `x ∉ [0, 1]`.
pub fn regularized_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && a.is_finite(), "regularized_beta requires a > 0, got {a}");
    assert!(b > 0.0 && b.is_finite(), "regularized_beta requires b > 0, got {b}");
    assert!((0.0..=1.0).contains(&x), "regularized_beta requires x in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1−x)^b / (a B(a, b)), in logs for stability.
    let ln_front =
        ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Inverse of [`regularized_beta`] in `x`: the `p`-quantile of the
/// Beta(a, b) distribution, via bisection (I_x is monotone in `x`).
///
/// # Panics
///
/// Panics if `a ≤ 0`, `b ≤ 0`, or `p ∉ [0, 1]`.
pub fn inverse_regularized_beta(a: f64, b: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "inverse_regularized_beta requires p in [0, 1], got {p}");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // 200 halvings take the bracket below f64 resolution everywhere.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if regularized_beta(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * mid.max(1e-12) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (3.0, 0.999_977_909_5),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 1.9] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5] {
            let hi = std_normal_cdf(x);
            let lo = std_normal_cdf(-x);
            assert!((hi + lo - 1.0).abs() < 1e-9, "symmetry at {x}");
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-7, "p={p}, x={x}");
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        // Accuracy is limited by the A&S erf approximation (~1.5e-7 in the
        // CDF ⇒ ~2e-6 in the quantile near the 97.5th percentile).
        assert!((std_normal_quantile(0.975) - 1.959_963_985).abs() < 1e-5);
        assert!(std_normal_quantile(0.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "quantile probability")]
    fn normal_quantile_rejects_zero() {
        std_normal_quantile(0.0);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [(f64, f64); 5] = [(1.0, 1.0), (2.0, 1.0), (3.0, 2.0), (5.0, 24.0), (7.0, 720.0)];
        for (x, want) in facts {
            assert!((ln_gamma(x) - want.ln()).abs() < 1e-10, "lnΓ({x})");
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = √π
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn regularized_gamma_p_exponential_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(
                (regularized_gamma_p(1.0, x) - (1.0 - (-x as f64).exp())).abs() < 1e-12,
                "P(1, {x})"
            );
        }
    }

    #[test]
    fn regularized_gamma_p_erlang_case() {
        // P(k, x) for integer k matches 1 − e^{−x} Σ_{n<k} x^n/n!.
        let k = 3u32;
        for &x in &[0.5, 2.0, 5.0, 12.0] {
            let mut sum = 0.0;
            let mut term = 1.0;
            for n in 0..k {
                if n > 0 {
                    term *= x / n as f64;
                }
                sum += term;
            }
            let want = 1.0 - (-x as f64).exp() * sum;
            assert!(
                (regularized_gamma_p(k as f64, x) - want).abs() < 1e-10,
                "P({k}, {x})"
            );
        }
    }

    #[test]
    fn regularized_gamma_p_monotone_and_bounded() {
        let mut prev = -1.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let p = regularized_gamma_p(2.5, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p + 1e-12 >= prev);
            prev = p;
        }
        assert_eq!(regularized_gamma_p(2.5, 0.0), 0.0);
        assert!(regularized_gamma_p(2.5, 100.0) > 0.999999);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn regularized_gamma_p_rejects_bad_a() {
        regularized_gamma_p(0.0, 1.0);
    }

    #[test]
    fn regularized_beta_known_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.0, 0.2, 0.5, 0.9, 1.0] {
            assert!((regularized_beta(1.0, 1.0, x) - x).abs() < 1e-12, "I_{x}(1,1)");
        }
        // I_x(1, b) = 1 − (1−x)^b.
        for &(b, x) in &[(2.0, 0.3), (5.0, 0.7), (0.5, 0.4)] {
            let want = 1.0 - (1.0 - x as f64).powf(b);
            assert!(
                (regularized_beta(1.0, b, x) - want).abs() < 1e-10,
                "I_{x}(1,{b})"
            );
        }
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[(2.5, 3.5, 0.4), (0.7, 1.9, 0.8), (10.0, 2.0, 0.95)] {
            let lhs = regularized_beta(a, b, x);
            let rhs = 1.0 - regularized_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "symmetry at ({a},{b},{x})");
        }
        // Binomial tail identity: P[Bin(n,p) ≤ k] = I_{1−p}(n−k, k+1).
        let (n, k, p) = (10u32, 3u32, 0.3f64);
        let mut tail = 0.0;
        for j in 0..=k {
            let mut comb = 1.0;
            for i in 0..j {
                comb *= (n - i) as f64 / (i + 1) as f64;
            }
            tail += comb * p.powi(j as i32) * (1.0 - p).powi((n - j) as i32);
        }
        let via_beta = regularized_beta((n - k) as f64, (k + 1) as f64, 1.0 - p);
        assert!((tail - via_beta).abs() < 1e-10, "binomial tail {tail} vs {via_beta}");
    }

    #[test]
    fn inverse_regularized_beta_round_trips() {
        for &(a, b) in &[(1.0, 1.0), (2.5, 7.0), (30.0, 3.0), (0.5, 0.5)] {
            for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
                let x = inverse_regularized_beta(a, b, p);
                assert!(
                    (regularized_beta(a, b, x) - p).abs() < 1e-9,
                    "round trip at ({a},{b},{p})"
                );
            }
        }
        assert_eq!(inverse_regularized_beta(2.0, 2.0, 0.0), 0.0);
        assert_eq!(inverse_regularized_beta(2.0, 2.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "x in [0, 1]")]
    fn regularized_beta_rejects_bad_x() {
        regularized_beta(1.0, 1.0, 1.5);
    }
}
