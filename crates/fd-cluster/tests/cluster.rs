//! End-to-end cluster tests: scale (1000 peers, one ticker), a UDP
//! partition of one registry shard under the PR-1 fault plan, and leader
//! election over live cluster snapshots.
//!
//! The tests in this file share wall-clock-sensitive resources (thread
//! counts, heartbeat cadences), so they serialize on one mutex instead
//! of trusting the harness's parallelism to stay out of the way.

use fd_cluster::{
    ClusterConfig, ClusterMonitor, ClusterReceiver, ClusterSender, ClusterSenderConfig,
    ControlConfig, MembershipChange, PeerConfig, PeerId, QosState,
};
use fd_core::{Heartbeat, HysteresisConfig};
use fd_metrics::QosRequirements;
use fd_runtime::{LeaderElector, Leadership};
use fd_sim::{FaultPlan, LinkFault};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

/// Threads in this process, from /proc (Linux only; `None` elsewhere).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn thousand_peers_one_ticker_thread() {
    let _guard = SERIAL.lock().unwrap();
    const N: u64 = 1000;
    const ETA: f64 = 0.05;
    const ALPHA: f64 = 0.15;

    let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
    let before = thread_count();
    for p in 0..N {
        monitor.add_peer(p, PeerConfig::new(ETA, ALPHA)).unwrap();
    }
    assert_eq!(monitor.peer_count(), N as usize);
    // Adding peers must not add threads: all expirations ride the one
    // timer wheel. (±2 tolerance for test-harness thread churn; exp_scale
    // asserts the exact invariant in a single-purpose process.)
    if let (Some(b), Some(a)) = (before, thread_count()) {
        assert!(a <= b + 2, "adding {N} peers grew threads {b} -> {a}");
    }

    // Warm-up: heartbeat every peer each η.
    for round in 1..=6u64 {
        let t = monitor.now();
        for p in 0..N {
            monitor.record(p, Heartbeat::new(round, t));
        }
        std::thread::sleep(Duration::from_secs_f64(ETA));
    }
    let snap = monitor.snapshot();
    assert_eq!(snap.trusted().len(), N as usize, "all peers trusted after warm-up");

    // Crash a tenth of the cluster: stop their heartbeats, keep the rest.
    let crashed: Vec<PeerId> = (0..N / 10).collect();
    let events = monitor.subscribe();
    let t_crash = monitor.now();
    for round in 7..=14u64 {
        let t = monitor.now();
        for p in N / 10..N {
            monitor.record(p, Heartbeat::new(round, t));
        }
        std::thread::sleep(Duration::from_secs_f64(ETA));
    }

    let snap = monitor.snapshot();
    assert_eq!(snap.suspected(), crashed, "exactly the crashed peers suspected");
    assert_eq!(snap.trusted().len(), (N - N / 10) as usize);

    // Per-peer detection bound: every suspicion lands within η + α of the
    // crash (plus generous slack for wheel tick + scheduler jitter).
    let mut suspected = 0;
    let mut worst = 0.0f64;
    while let Ok(ev) = events.try_recv() {
        if ev.change == fd_cluster::MembershipChange::Suspected {
            assert!(ev.peer < N / 10, "live peer {} suspected", ev.peer);
            suspected += 1;
            worst = worst.max(ev.at - t_crash);
        }
    }
    assert_eq!(suspected, (N / 10) as usize, "one suspicion event per crashed peer");
    assert!(
        worst <= ETA + ALPHA + 0.1,
        "worst detection time {worst:.3}s exceeds η+α+slack = {:.3}s",
        ETA + ALPHA + 0.1
    );

    let stats = monitor.stats();
    assert!(stats.ticks > 0 && stats.timers_fired > 0);
    monitor.shutdown();
}

#[test]
fn udp_partition_of_one_shard_suspects_exactly_that_shard() {
    let _guard = SERIAL.lock().unwrap();
    const N: u64 = 64;
    const ETA: f64 = 0.03;
    const ALPHA: f64 = 0.09;
    const T_PARTITION: f64 = 0.2;

    let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
    for p in 0..N {
        monitor.add_peer(p, PeerConfig::new(ETA, ALPHA)).unwrap();
    }
    // Partition the peers of one registry shard, as the acceptance
    // criteria demand — shard 0's members under Fibonacci hashing.
    let partitioned: Vec<PeerId> = (0..N).filter(|&p| monitor.shard_index(p) == 0).collect();
    assert!(!partitioned.is_empty(), "shard 0 must hold some of {N} peers");
    assert!(partitioned.len() < N as usize / 2, "partition must be a strict minority");

    let rx = ClusterReceiver::bind(SocketAddr::from((Ipv4Addr::LOCALHOST, 0)), monitor.clone())
        .expect("bind");
    let plan = FaultPlan::new(42).link_fault(T_PARTITION, LinkFault::Partition);
    let mut tx = ClusterSender::connect(
        rx.local_addr(),
        ClusterSenderConfig {
            fault_plan: Some(plan),
            faulty_peers: Some(partitioned.clone()),
            ..ClusterSenderConfig::default()
        },
    )
    .expect("connect");

    // Heartbeat all peers every η; the plan cuts the shard's entries off
    // from T_PARTITION onward while the rest of each batch still flows.
    let deadline = ETA + ALPHA + 0.25;
    let start = monitor.now();
    let mut round = 0u64;
    while monitor.now() - start < T_PARTITION + deadline {
        round += 1;
        let t = monitor.now();
        for p in 0..N {
            tx.queue(p, round, t).unwrap();
        }
        tx.flush().unwrap();
        std::thread::sleep(Duration::from_secs_f64(ETA));
    }

    // Batching: 64 entries per round pack into two datagrams (61 + 3).
    assert!(
        tx.batching_factor() >= 8.0,
        "batching factor {:.1} below 8",
        tx.batching_factor()
    );
    assert_eq!(rx.rejected(), 0);
    assert!(rx.entries_received() > 0);

    let snap = monitor.snapshot();
    assert_eq!(
        snap.suspected(),
        partitioned,
        "exactly the partitioned shard suspected (snapshot at {:.3})",
        snap.taken_at()
    );
    assert_eq!(snap.trusted().len(), N as usize - partitioned.len());

    // Leader election over the live snapshot: a ranking headed by a
    // partitioned peer demotes to the first un-partitioned one.
    let head = partitioned[0];
    let backup = (0..N).find(|p| !partitioned.contains(p)).unwrap();
    let elector = LeaderElector::new(vec![head, backup]);
    assert_eq!(elector.current(&snap), Leadership::Leader(backup));

    rx.shutdown();
    monitor.shutdown();
}

#[test]
fn leader_reelection_on_peer_recovery() {
    let _guard = SERIAL.lock().unwrap();
    const ETA: f64 = 0.02;
    const ALPHA: f64 = 0.05;
    let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
    monitor.add_peer(1, PeerConfig::new(ETA, ALPHA)).unwrap();
    monitor.add_peer(2, PeerConfig::new(ETA, ALPHA)).unwrap();
    let elector = LeaderElector::new(vec![1u64, 2]);

    let beat = |peers: &[PeerId], rounds: std::ops::RangeInclusive<u64>| {
        for round in rounds {
            let t = monitor.now();
            for &p in peers {
                monitor.record(p, Heartbeat::new(round, t));
            }
            std::thread::sleep(Duration::from_secs_f64(ETA));
        }
    };

    beat(&[1, 2], 1..=5);
    assert_eq!(elector.current(&monitor.snapshot()), Leadership::Leader(1));

    // Peer 1 goes quiet: demotion to peer 2 within the detection bound.
    let t0 = Instant::now();
    loop {
        beat(&[2], 6..=6);
        if elector.current(&monitor.snapshot()) == Leadership::Leader(2) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "demotion too slow");
    }

    // Peer 1 recovers: its heartbeats resume and it reclaims the lead.
    let t0 = Instant::now();
    let mut round = 7;
    loop {
        beat(&[1, 2], round..=round);
        round += 1;
        if elector.current(&monitor.snapshot()) == Leadership::Leader(1) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(5), "re-election too slow");
    }
    monitor.shutdown();
}

/// Chaos regime shift under the PR-1 fault plan: a lunch-hour delay
/// spike drives a requirement-bearing peer through the full adaptive
/// round trip — retune on the clean regime, graceful degradation when
/// the spiked regime makes the QoS targets infeasible, and promotion
/// back to nominal parameters once the spike clears — firing exactly
/// one `Degraded` and one `Promoted` membership event.
#[test]
fn delay_spike_regime_shift_degrades_and_promotes() {
    let _guard = SERIAL.lock().unwrap();
    let monitor = ClusterMonitor::spawn(ClusterConfig {
        control: ControlConfig {
            // Inert background controller (first round only after a full
            // period): the test steps rounds deterministically by hand.
            period: 600.0,
            short_delay_window: 8,
            long_delay_window: 24,
            min_delay_samples: 4,
            min_eta: 0.5,
            hysteresis: HysteresisConfig { min_dwell: 0.0, deadband: 0.01 },
            promote_after: 2,
            ..ControlConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("spawn");
    let req = QosRequirements::new(4.0, 1e9, 2.0).unwrap();
    monitor.add_peer(1, PeerConfig::new(1.0, 3.0).requirements(req)).unwrap();

    // The spike raises the ~0.05 s link delay to ~4 s (±0.1 jitter) for
    // sends in [8.5, 24.5) — enough regime variance to push the
    // feasible η below the 0.5 floor — then the link heals.
    let plan = FaultPlan::new(7)
        .link_fault(8.5, LinkFault::DelaySpike { extra: 3.95, jitter: 0.1 })
        .link_fault(24.5, LinkFault::Nominal);
    let mut injector = plan.injector();
    let mut rng = StdRng::seed_from_u64(7);
    let mut fates = Vec::new();
    let mut beat = |seq: u64, injector: &mut fd_sim::FaultInjector, rng: &mut StdRng| {
        let send = seq as f64; // η = 1 s of simulated time
        fates.clear();
        injector.apply(send, Some(0.05), rng, &mut fates);
        for &d in &fates {
            assert!(monitor.record_at(1, send + d, Heartbeat::new(seq, send)));
        }
    };

    // Clean warm-up: the first control round retunes toward the paper
    // configurator's output for the clean regime (α → T_M^U = 2.0) and
    // recommends the feasible η within that same round.
    for seq in 1..=8 {
        beat(seq, &mut injector, &mut rng);
    }
    assert_eq!(monitor.run_control_round(), 1, "clean regime retunes in one round");
    let st = monitor.status(1).unwrap();
    assert!((st.alpha - 2.0).abs() < 1e-6, "α retuned to 2.0, got {}", st.alpha);
    assert_eq!(st.qos_state, QosState::Nominal);
    let recs = monitor.drain_eta_recommendations();
    assert_eq!(recs.len(), 1);
    assert!((recs[0].1 - 2.0).abs() < 1e-6, "feasible η recommended");

    // Subscribe after warm-up so the cold-start Trusted event (which
    // has no matching suspicion) stays out of the churn ledger.
    let events = monitor.subscribe();

    // Spiked regime: infeasible ⇒ best-effort parameters + Degraded.
    for seq in 9..=24 {
        beat(seq, &mut injector, &mut rng);
    }
    assert_eq!(monitor.run_control_round(), 1, "spiked regime degrades in one round");
    let st = monitor.status(1).unwrap();
    assert_eq!(st.qos_state, QosState::Degraded);
    assert!(st.estimator_samples > 0, "degradation keeps the tracker warm");
    assert_eq!(monitor.stats().degraded_peers, 1);

    // Healed link: a feasibility streak of `promote_after` rounds
    // re-promotes with the nominal parameters restored.
    for seq in 25..=54 {
        beat(seq, &mut injector, &mut rng);
    }
    assert_eq!(monitor.run_control_round(), 0, "first clean round only builds the streak");
    assert_eq!(monitor.run_control_round(), 1, "second clean round promotes");
    let st = monitor.status(1).unwrap();
    assert_eq!(st.qos_state, QosState::Nominal);
    assert!((st.alpha - 2.0).abs() < 1e-6, "nominal α restored, got {}", st.alpha);
    assert_eq!(st.counters.heartbeats, 54, "no heartbeat lost across the round trip");
    let stats = monitor.stats();
    assert_eq!(stats.degradations, 1);
    assert_eq!(stats.promotions, 1);
    assert_eq!(stats.degraded_peers, 0);

    // Exactly one Degraded → Promoted pair; any Suspected churn during
    // the spike is genuine detector output and must balance out.
    let mut control_events = Vec::new();
    let mut suspected = 0i64;
    while let Ok(ev) = events.try_recv() {
        match ev.change {
            MembershipChange::Degraded | MembershipChange::Promoted => {
                control_events.push(ev.change)
            }
            MembershipChange::Suspected => suspected += 1,
            MembershipChange::Trusted => suspected -= 1,
            _ => {}
        }
    }
    assert_eq!(control_events, vec![MembershipChange::Degraded, MembershipChange::Promoted]);
    assert_eq!(suspected, 0, "spike-era suspicions all recovered");
    monitor.shutdown();
}
