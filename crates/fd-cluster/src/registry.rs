//! Sharded per-peer state storage.
//!
//! One global lock around N peers would serialize every heartbeat from
//! every socket thread against the ticker. Instead peers hash into a
//! fixed, power-of-two number of shards, each behind its own `RwLock`:
//! recording a heartbeat write-locks exactly one shard, and snapshots
//! read-lock shards one at a time. Shard choice is Fibonacci hashing —
//! multiply by 2⁶⁴/φ and keep the top bits — which spreads even
//! sequential peer ids (the common assignment) uniformly.

use crate::PeerId;
use fd_core::detectors::NfdE;
use fd_core::estimate::{DelayMomentsEstimator, LossRateEstimator, WindowedLossRateEstimator};
use fd_core::HysteresisGate;
use fd_metrics::{FdOutput, OnlineQos, QosRequirements};
use parking_lot::RwLock;
use std::collections::HashMap;

/// 2⁶⁴ / φ, the Fibonacci-hashing multiplier.
const FIB_MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-peer QoS counters, maintained since the peer was added.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerCounters {
    /// Heartbeats recorded for this peer (fresh or stale).
    pub heartbeats: u64,
    /// Heartbeats carrying a sequence number at or below the largest
    /// already seen — late, duplicated or reordered arrivals the
    /// freshness logic ignores.
    pub stale: u64,
    /// Trust→Suspect transitions (the paper's S-transitions).
    pub suspicions: u64,
    /// Suspect→Trust transitions (T-transitions; the first one is the
    /// initial trust, since every peer starts suspected).
    pub recoveries: u64,
    /// Heartbeats rejected because they carried an incarnation below the
    /// peer's current one — traffic from a previous life, delayed in
    /// flight across a crash, that must not refresh trust.
    pub stale_incarnation: u64,
    /// Times the peer's detector state was reset because a heartbeat
    /// arrived with a *higher* incarnation — i.e. observed restarts.
    pub incarnation_resets: u64,
}

/// Where the adaptive control plane has a peer: meeting its declared QoS
/// requirements, or degraded to best-effort parameters because the
/// configurator proved (Theorem 12) or the feasible-`η` search found
/// that the requirements cannot currently be met.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QosState {
    /// Requirements are (believed) met; the configured `(η, α)` came out
    /// of a successful `configure_nfd_u` run — or the peer declared no
    /// requirements, in which case there is nothing to miss.
    #[default]
    Nominal,
    /// The last control round found the requirements infeasible under
    /// the current network estimate; the peer runs best-effort fallback
    /// parameters (detection budget honored, recurrence bound dropped)
    /// until conditions recover.
    Degraded,
}

/// Adaptive-control state for one peer that declared QoS requirements:
/// the §8.1.2 short/long conservative estimator pair feeding the control
/// loop, the hysteresis gate damping it, and the degradation bookkeeping.
/// Guarded by the peer's shard lock, like the rest of [`PeerState`].
#[derive(Debug)]
pub(crate) struct ControlState {
    /// The `(T_D^U, T_MR^L, T_M^U)` tuple the control loop re-runs the
    /// configurator against.
    pub requirements: QosRequirements,
    /// Short-horizon loss estimate (recent sequence-number span): reacts
    /// to regime shifts within one window.
    pub short_loss: WindowedLossRateEstimator,
    /// Long-horizon loss estimate (whole lifetime): stable under noise.
    pub long_loss: LossRateEstimator,
    /// Short-horizon delay moments (small sliding window).
    pub short_delay: DelayMomentsEstimator,
    /// Long-horizon delay moments (large sliding window).
    pub long_delay: DelayMomentsEstimator,
    /// Deadband + min-dwell admission control for parameter changes.
    pub gate: HysteresisGate,
    /// Nominal vs degraded (see [`QosState`]).
    pub qos_state: QosState,
    /// Parameter applications (gated, forced degradations and
    /// promotions alike).
    pub reconfigurations: u64,
    /// Nominal→Degraded transitions.
    pub degradations: u64,
    /// Degraded→Nominal transitions.
    pub promotions: u64,
    /// Consecutive control rounds (while degraded) whose configurator
    /// run came back feasible; promotion fires once this reaches the
    /// configured threshold.
    pub feasible_streak: u32,
    /// Sender-side `η` the last control round recommended, awaiting
    /// delivery/confirmation (also drained cluster-wide via
    /// `ClusterMonitor::drain_eta_recommendations`).
    pub recommended_eta: Option<f64>,
}

impl ControlState {
    /// Feeds one accepted heartbeat into the estimator pair.
    /// `fresh` marks a sequence number above every previously seen one;
    /// only fresh sequences feed the loss estimators (re-feeding a
    /// duplicate would credit the same message twice), which makes
    /// out-of-order late arrivals count as losses — a conservative bias,
    /// consistent with taking the worst of the two horizons below.
    pub fn observe(&mut self, seq: u64, send_time: f64, receipt_time: f64, fresh: bool) {
        if fresh {
            self.short_loss.observe(seq);
            self.long_loss.observe(seq);
        }
        self.short_delay.observe(send_time, receipt_time);
        self.long_delay.observe(send_time, receipt_time);
    }

    /// The conservative combined estimate `(p̂_L, V̂(D))` — the worse of
    /// the short and long horizons on each axis (§8.1.2: the short
    /// window notices a burst immediately, the long window remembers it;
    /// a detector configured for the worst of both stays safe through
    /// the transition). `None` until the long delay window holds at
    /// least `min_delay_samples` observations.
    pub fn estimate(&self, min_delay_samples: usize) -> Option<(f64, f64)> {
        if self.long_delay.len() < min_delay_samples.max(2) {
            return None;
        }
        let p_l = self.short_loss.estimate()?.max(self.long_loss.estimate()?);
        let v = self.short_delay.delay_variance()?.max(self.long_delay.delay_variance()?);
        Some((p_l, v))
    }

    /// Drops sequence-number-derived state after an incarnation reset:
    /// the new life restarts sequences at 1, which the old loss windows
    /// would discard as ancient. Delay moments survive (link latency is
    /// a property of the path, not the incarnation).
    pub fn reset_sequences(&mut self) {
        self.short_loss = WindowedLossRateEstimator::new(self.short_loss.span());
        self.long_loss = LossRateEstimator::new();
    }
}

/// Everything the cluster tracks for one peer. Guarded by its shard's
/// `RwLock`.
#[derive(Debug)]
pub(crate) struct PeerState {
    /// The §6.3 freshness-point detector with its sliding-window
    /// expected-arrival estimator.
    pub detector: NfdE,
    /// Output as of the last advance — what snapshots report.
    pub last_output: FdOutput,
    /// Highest sender incarnation seen from this peer. Heartbeats below
    /// it are rejected; one above it resets the detector (crash-recovery
    /// model: a restarted peer starts a fresh monitoring epoch).
    pub incarnation: u64,
    /// Registration generation; wheel entries from before a remove/re-add
    /// (or from before an incarnation reset) carry an older generation
    /// and are discarded.
    pub gen: u64,
    /// Whether a wheel entry is currently outstanding for this peer (at
    /// most one at a time; see `monitor`).
    pub armed: bool,
    /// Latest local time this peer's detector was driven to; concurrent
    /// callers clamp to it so the detector's monotone-time contract holds.
    pub last_seen: f64,
    /// QoS counters.
    pub counters: PeerCounters,
    /// Online interval accounting over this peer's output stream (the
    /// live §2.2/§2.3 metrics: `P_A`, `E(T_MR)`, `E(T_M)`, `E(T_G)`).
    /// Tracks the *output* across incarnation resets — a restarted peer
    /// is still one monitored output history — and starts fresh only on
    /// remove/re-add.
    pub qos: OnlineQos,
    /// Adaptive-control state; `None` for peers that declared no QoS
    /// requirements (the control loop skips them entirely).
    pub control: Option<ControlState>,
}

/// The sharded peer table.
pub(crate) struct PeerRegistry {
    shards: Vec<RwLock<HashMap<PeerId, PeerState>>>,
    /// log₂(shard count), for the Fibonacci top-bits extraction.
    shift: u32,
}

impl PeerRegistry {
    /// Creates a registry with `shards` rounded up to a power of two (at
    /// least 1).
    pub fn new(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        Self {
            shards: (0..count).map(|_| RwLock::new(HashMap::new())).collect(),
            shift: count.trailing_zeros(),
        }
    }

    /// Which shard index holds `peer`.
    pub fn shard_index(&self, peer: PeerId) -> usize {
        if self.shift == 0 {
            return 0;
        }
        (peer.wrapping_mul(FIB_MULT) >> (64 - self.shift)) as usize
    }

    /// The shard lock holding `peer`.
    pub fn shard(&self, peer: PeerId) -> &RwLock<HashMap<PeerId, PeerState>> {
        &self.shards[self.shard_index(peer)]
    }

    /// All shards, for whole-cluster scans (lock one at a time).
    pub fn shards(&self) -> &[RwLock<HashMap<PeerId, PeerState>>] {
        &self.shards
    }

    /// Total peers across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_shard_count_up_to_power_of_two() {
        assert_eq!(PeerRegistry::new(0).shards().len(), 1);
        assert_eq!(PeerRegistry::new(1).shards().len(), 1);
        assert_eq!(PeerRegistry::new(3).shards().len(), 4);
        assert_eq!(PeerRegistry::new(16).shards().len(), 16);
        assert_eq!(PeerRegistry::new(17).shards().len(), 32);
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let reg = PeerRegistry::new(16);
        let mut per_shard = [0usize; 16];
        for peer in 0..1600u64 {
            per_shard[reg.shard_index(peer)] += 1;
        }
        // Fibonacci hashing keeps sequential ids close to uniform: every
        // shard within 2× of the mean (100).
        for (i, &n) in per_shard.iter().enumerate() {
            assert!((50..=200).contains(&n), "shard {i} got {n} of 1600");
        }
    }

    #[test]
    fn single_shard_always_index_zero() {
        let reg = PeerRegistry::new(1);
        for peer in [0u64, 1, u64::MAX] {
            assert_eq!(reg.shard_index(peer), 0);
        }
    }
}
