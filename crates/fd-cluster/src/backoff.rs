//! Restart-backoff policy shared by every supervised thread in this
//! crate (ticker, control loop, receive pump, metrics accept loop) and,
//! since the federation gossip tier moved onto real UDP, by
//! `fd-federation`'s NACK repair pacing — a receiver re-requesting a
//! full refresh backs off by the same bounded-exponential-plus-jitter
//! rule a crashed pump does, for the same reason: a fleet of receivers
//! that all lost the same frame must not re-request in lock-step.
//!
//! Two ingredients:
//!
//! * **bounded exponential growth** — the n-th restart waits on the
//!   order of `base · 2ⁿ`, capped, so a persistently-panicking loop
//!   cannot spin at full speed while its restart budget drains;
//! * **uniform jitter** — the wait is scaled by a uniform factor in
//!   `[0.5, 1.5)`. Supervised threads across a fleet (or several
//!   monitors in one process) that all tripped on the same poisoned
//!   input would otherwise restart in lock-step and re-collide on
//!   shared resources; jitter decorrelates the retries, the same
//!   remedy exponential-backoff networks apply.

use rand::rngs::StdRng;
use rand::Rng;
use std::time::Duration;

/// The delay before restart number `restarts` (1-based): `base · 2ⁿ⁻¹`
/// capped at `cap`, then jittered by a uniform factor in `[0.5, 1.5)`.
/// The jitter is applied after the cap, so the worst case is `1.5 · cap`.
pub fn restart_delay(
    rng: &mut StdRng,
    restarts: u64,
    base: Duration,
    cap: Duration,
) -> Duration {
    let doublings = restarts.saturating_sub(1).min(6) as u32;
    let exp = base.mul_f64(f64::from(1u32 << doublings)).min(cap);
    exp.mul_f64(rng.random_range(0.5..1.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn grows_exponentially_and_caps() {
        let mut rng = StdRng::seed_from_u64(7);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(250);
        for restarts in 1..=12u64 {
            let d = restart_delay(&mut rng, restarts, base, cap);
            let doublings = restarts.saturating_sub(1).min(6) as u32;
            let nominal = base.mul_f64(f64::from(1u32 << doublings)).min(cap);
            assert!(d >= nominal.mul_f64(0.5), "restart {restarts}: {d:?} < half nominal");
            assert!(d <= nominal.mul_f64(1.5), "restart {restarts}: {d:?} > 1.5x nominal");
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(1);
        let draws: Vec<Duration> =
            (0..16).map(|_| restart_delay(&mut rng, 1, base, cap)).collect();
        let all_equal = draws.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_equal, "sixteen draws came out identical: {draws:?}");
    }
}
