//! The cluster façade: N peers, one ticker thread.
//!
//! [`ClusterMonitor`] owns the sharded registry, the timer wheel, and a
//! single ticker thread that sweeps the wheel every `tick` seconds. Each
//! peer runs its own NFD-E instance (per-peer `η`, `α`, estimation
//! window), so the paper's per-peer QoS analysis applies unchanged; the
//! cluster layer only changes *who drives the timers* — a wheel sweep
//! instead of a thread per peer — adding at most one `tick` of scheduling
//! slack to the detection time.
//!
//! Concurrency protocol (deadlock discipline): lock order is **shard,
//! then wheel**. Both the heartbeat-recording path and the ticker's
//! rescheduling path take a shard write lock first and the wheel mutex
//! inside it; the ticker's sweep itself takes the wheel mutex alone and
//! collects expirations into a local buffer before touching any shard.
//! Each peer has at most one outstanding wheel entry (`armed`), created
//! when a deadline first appears and renewed by the sweep; entries
//! surviving a remove/re-add are discarded by generation mismatch.

use crate::registry::{PeerCounters, PeerRegistry, PeerState};
use crate::wheel::TimerWheel;
use crate::PeerId;
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use fd_core::detectors::{NfdE, ParamError};
use fd_core::{FailureDetector, Heartbeat};
use fd_metrics::FdOutput;
use fd_runtime::{Clock, RuntimeError, TrustView, WallClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Cluster-wide tuning knobs (per-peer QoS lives in [`PeerConfig`]).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Registry shard count, rounded up to a power of two.
    pub shards: usize,
    /// Timer-wheel bucket count.
    pub wheel_slots: usize,
    /// Ticker period and wheel resolution, seconds. Expiry detection lags
    /// a true freshness point by at most this much (plus OS jitter).
    pub tick: f64,
    /// Capacity of each membership-event subscription channel; a slow
    /// subscriber loses events past this (counted, never blocking).
    pub event_capacity: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            wheel_slots: 512,
            tick: 0.001,
            event_capacity: 1024,
        }
    }
}

/// Per-peer detector parameters: the paper's `η` (heartbeat period) and
/// `α` (freshness slack), plus the NFD-E estimation window `n`.
#[derive(Debug, Clone, Copy)]
pub struct PeerConfig {
    /// Expected heartbeat period `η`, seconds.
    pub eta: f64,
    /// Freshness slack `α`, seconds: `τᵢ = EAᵢ + α`.
    pub alpha: f64,
    /// Sliding-window size for the expected-arrival estimator.
    pub window: usize,
}

impl PeerConfig {
    /// Parameters with the default estimation window (32 samples).
    pub fn new(eta: f64, alpha: f64) -> Self {
        Self { eta, alpha, window: 32 }
    }

    /// Overrides the estimation window.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }
}

/// Why a cluster operation failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The peer is already registered.
    DuplicatePeer(PeerId),
    /// The per-peer detector parameters are invalid.
    Params(ParamError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DuplicatePeer(p) => write!(f, "peer {p} is already registered"),
            ClusterError::Params(e) => write!(f, "invalid peer parameters: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Params(e) => Some(e),
            ClusterError::DuplicatePeer(_) => None,
        }
    }
}

impl From<ParamError> for ClusterError {
    fn from(e: ParamError) -> Self {
        ClusterError::Params(e)
    }
}

/// What changed about a peer's membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The peer was registered (it starts suspected, like every NFD-E).
    Added,
    /// The peer was unregistered.
    Removed,
    /// Trust→Suspect (the paper's S-transition).
    Suspected,
    /// Suspect→Trust (T-transition).
    Trusted,
}

/// One membership transition, as delivered to subscribers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipEvent {
    /// The peer concerned.
    pub peer: PeerId,
    /// Cluster-clock time of the transition, seconds.
    pub at: f64,
    /// What happened.
    pub change: MembershipChange,
}

/// Point-in-time view of one peer.
#[derive(Debug, Clone, Copy)]
pub struct PeerStatus {
    /// The peer.
    pub peer: PeerId,
    /// Current detector output.
    pub output: FdOutput,
    /// Its QoS counters since registration.
    pub counters: PeerCounters,
    /// Its heartbeat period `η`.
    pub eta: f64,
    /// Its freshness slack `α`.
    pub alpha: f64,
}

/// A consistent-enough point-in-time view of the whole cluster: each
/// peer's output as of the snapshot instant (outputs lag true freshness
/// expiry by at most one wheel tick).
///
/// Implements [`TrustView`], so a
/// [`LeaderElector`](fd_runtime::LeaderElector)`<PeerId>` can elect over
/// it directly.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    at: f64,
    outputs: HashMap<PeerId, FdOutput>,
}

impl ClusterSnapshot {
    /// Cluster-clock time the snapshot was taken.
    pub fn taken_at(&self) -> f64 {
        self.at
    }

    /// This peer's output at snapshot time, `None` if not registered.
    pub fn output(&self, peer: PeerId) -> Option<FdOutput> {
        self.outputs.get(&peer).copied()
    }

    /// Peers trusted at snapshot time, ascending.
    pub fn trusted(&self) -> Vec<PeerId> {
        self.select(|o| o.is_trust())
    }

    /// Peers suspected at snapshot time, ascending.
    pub fn suspected(&self) -> Vec<PeerId> {
        self.select(|o| !o.is_trust())
    }

    /// Number of peers in the snapshot.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the snapshot holds no peers.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    fn select(&self, keep: impl Fn(FdOutput) -> bool) -> Vec<PeerId> {
        let mut v: Vec<PeerId> =
            self.outputs.iter().filter(|(_, o)| keep(**o)).map(|(p, _)| *p).collect();
        v.sort_unstable();
        v
    }
}

impl TrustView<PeerId> for ClusterSnapshot {
    fn is_trusted(&self, candidate: &PeerId) -> bool {
        self.output(*candidate).is_some_and(|o| o.is_trust())
    }
}

/// Cluster-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Registered peers.
    pub peers: usize,
    /// Ticker sweeps since spawn.
    pub ticks: u64,
    /// Wheel expirations that matched a live registration.
    pub timers_fired: u64,
    /// Membership events dropped because a subscriber's channel was full.
    pub events_dropped: u64,
    /// Heartbeats recorded for peers not (or no longer) registered.
    pub unknown_heartbeats: u64,
}

struct Inner {
    clock: WallClock,
    tick: f64,
    registry: PeerRegistry,
    wheel: Mutex<TimerWheel>,
    next_gen: AtomicU64,
    subscribers: Mutex<Vec<channel::Sender<MembershipEvent>>>,
    event_capacity: usize,
    ticks: AtomicU64,
    timers_fired: AtomicU64,
    events_dropped: AtomicU64,
    unknown_heartbeats: AtomicU64,
    /// Held so the ticker (owning the receiver) observes disconnection
    /// when the last monitor handle drops without an explicit shutdown.
    _stop_tx: channel::Sender<()>,
}

/// Monitors N peers from one node with a single ticker thread.
///
/// Cheaply cloneable; all clones share the same cluster. The ticker
/// stops on [`shutdown`](ClusterMonitor::shutdown) or when the last
/// handle drops.
#[derive(Clone)]
pub struct ClusterMonitor {
    inner: Arc<Inner>,
    ticker: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl fmt::Debug for ClusterMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterMonitor")
            .field("peers", &self.inner.registry.len())
            .field("tick", &self.inner.tick)
            .finish()
    }
}

impl ClusterMonitor {
    /// Starts a cluster monitor: allocates the registry and wheel and
    /// spawns the ticker thread. Time 0 is this instant.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.tick` is not finite and positive or
    /// `cfg.wheel_slots` is zero (delegated validation).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the ticker thread cannot start.
    pub fn spawn(cfg: ClusterConfig) -> Result<Self, RuntimeError> {
        let (stop_tx, stop_rx) = channel::bounded::<()>(1);
        let inner = Arc::new(Inner {
            clock: WallClock::new(),
            tick: cfg.tick,
            registry: PeerRegistry::new(cfg.shards),
            wheel: Mutex::new(TimerWheel::new(cfg.wheel_slots, cfg.tick)),
            next_gen: AtomicU64::new(0),
            subscribers: Mutex::new(Vec::new()),
            event_capacity: cfg.event_capacity.max(1),
            ticks: AtomicU64::new(0),
            timers_fired: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            unknown_heartbeats: AtomicU64::new(0),
            _stop_tx: stop_tx,
        });
        let weak = Arc::downgrade(&inner);
        let period = Duration::from_secs_f64(cfg.tick);
        let handle = std::thread::Builder::new()
            .name("fd-cluster-ticker".into())
            .spawn(move || ticker(weak, stop_rx, period))
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-ticker", source: e })?;
        Ok(Self { inner, ticker: Arc::new(Mutex::new(Some(handle))) })
    }

    /// Seconds since the cluster started, on its own clock — the
    /// timescale of snapshots, events and [`record_at`](Self::record_at).
    pub fn now(&self) -> f64 {
        self.inner.clock.now()
    }

    /// Registers a peer with its own detector parameters. The peer
    /// starts suspected (every NFD-E does) and is trusted once its first
    /// heartbeat arrives.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DuplicatePeer`] if already registered,
    /// [`ClusterError::Params`] if `cfg` is invalid.
    pub fn add_peer(&self, peer: PeerId, cfg: PeerConfig) -> Result<(), ClusterError> {
        let detector = NfdE::new(cfg.eta, cfg.alpha, cfg.window)?;
        let inner = &*self.inner;
        let now = inner.clock.now();
        let gen = inner.next_gen.fetch_add(1, Ordering::Relaxed);
        {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            if guard.contains_key(&peer) {
                return Err(ClusterError::DuplicatePeer(peer));
            }
            let mut state = PeerState {
                detector,
                last_output: FdOutput::Suspect,
                gen,
                armed: false,
                last_seen: now,
                counters: PeerCounters::default(),
            };
            state.detector.advance(now);
            state.last_output = state.detector.output();
            if let Some(due) = state.detector.next_deadline() {
                inner.wheel.lock().schedule(due, peer, gen);
                state.armed = true;
            }
            guard.insert(peer, state);
        }
        inner.emit(MembershipEvent { peer, at: now, change: MembershipChange::Added });
        Ok(())
    }

    /// Unregisters a peer; returns whether it was registered. Its wheel
    /// entry (if any) is cancelled lazily by generation mismatch.
    pub fn remove_peer(&self, peer: PeerId) -> bool {
        let inner = &*self.inner;
        let now = inner.clock.now();
        let removed = inner.registry.shard(peer).write().remove(&peer).is_some();
        if removed {
            inner.emit(MembershipEvent { peer, at: now, change: MembershipChange::Removed });
        }
        removed
    }

    /// Records a heartbeat from `peer` at the current cluster time.
    /// Returns `false` (and counts it) if the peer is not registered.
    pub fn record(&self, peer: PeerId, hb: Heartbeat) -> bool {
        let now = self.inner.clock.now();
        self.record_at(peer, now, hb)
    }

    /// Records a heartbeat at an explicit cluster-clock time (for tests
    /// and drivers that batch timestamps; normally use
    /// [`record`](Self::record)). Times earlier than the peer's latest
    /// are clamped — detector time is monotone.
    pub fn record_at(&self, peer: PeerId, now: f64, hb: Heartbeat) -> bool {
        let inner = &*self.inner;
        let event;
        {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&peer) else {
                inner.unknown_heartbeats.fetch_add(1, Ordering::Relaxed);
                return false;
            };
            let now = now.max(state.last_seen);
            state.last_seen = now;
            state.counters.heartbeats += 1;
            if hb.seq <= state.detector.max_seq_received().unwrap_or(0) {
                state.counters.stale += 1;
            }
            state.detector.on_heartbeat(now, hb);
            event = apply_transition(state, peer, now);
            if !state.armed {
                if let Some(due) = state.detector.next_deadline() {
                    inner.wheel.lock().schedule(due, peer, state.gen);
                    state.armed = true;
                }
            }
        }
        if let Some(ev) = event {
            inner.emit(ev);
        }
        true
    }

    /// One peer's current status, `None` if not registered.
    pub fn status(&self, peer: PeerId) -> Option<PeerStatus> {
        let guard = self.inner.registry.shard(peer).read();
        guard.get(&peer).map(|s| PeerStatus {
            peer,
            output: s.last_output,
            counters: s.counters,
            eta: s.detector.eta(),
            alpha: s.detector.alpha(),
        })
    }

    /// A point-in-time view of every peer's output (read-locking shards
    /// one at a time; outputs lag true expiry by at most one tick).
    pub fn snapshot(&self) -> ClusterSnapshot {
        let inner = &*self.inner;
        let at = inner.clock.now();
        let mut outputs = HashMap::new();
        for shard in inner.registry.shards() {
            for (peer, state) in shard.read().iter() {
                outputs.insert(*peer, state.last_output);
            }
        }
        ClusterSnapshot { at, outputs }
    }

    /// Subscribes to membership transitions. The channel is bounded by
    /// the configured `event_capacity`: a subscriber that stops draining
    /// loses further events (counted in
    /// [`ClusterStats::events_dropped`]) rather than blocking the
    /// cluster. Dropping the receiver unsubscribes.
    pub fn subscribe(&self) -> channel::Receiver<MembershipEvent> {
        let (tx, rx) = channel::bounded(self.inner.event_capacity);
        self.inner.subscribers.lock().push(tx);
        rx
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.inner.registry.len()
    }

    /// Which registry shard `peer` hashes to — for diagnostics and for
    /// chaos tests that partition exactly one shard's peers.
    pub fn shard_index(&self, peer: PeerId) -> usize {
        self.inner.registry.shard_index(peer)
    }

    /// Cluster-wide counters.
    pub fn stats(&self) -> ClusterStats {
        let inner = &*self.inner;
        ClusterStats {
            peers: inner.registry.len(),
            ticks: inner.ticks.load(Ordering::Relaxed),
            timers_fired: inner.timers_fired.load(Ordering::Relaxed),
            events_dropped: inner.events_dropped.load(Ordering::Relaxed),
            unknown_heartbeats: inner.unknown_heartbeats.load(Ordering::Relaxed),
        }
    }

    /// Stops the ticker thread and waits for it. Idempotent across
    /// clones; the registry remains readable afterwards, but no further
    /// suspicions will be driven.
    pub fn shutdown(&self) {
        // Closing our stop slot is not enough (clones hold senders too);
        // send an explicit stop, then join.
        let _ = self.inner._stop_tx.try_send(());
        if let Some(handle) = self.ticker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Inner {
    /// One ticker sweep: collect due wheel entries, then drive each
    /// affected peer's detector (shard write lock, wheel re-arm inside).
    fn on_tick(&self) {
        let now = self.clock.now();
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let mut expired = Vec::new();
        self.wheel.lock().advance(now, &mut expired);
        let mut events = Vec::new();
        for entry in expired {
            let shard = self.registry.shard(entry.peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&entry.peer) else {
                continue; // removed; lazily cancelled
            };
            if state.gen != entry.gen {
                continue; // re-added since; stale timer
            }
            self.timers_fired.fetch_add(1, Ordering::Relaxed);
            state.armed = false;
            let now = now.max(state.last_seen);
            state.last_seen = now;
            state.detector.advance(now);
            if let Some(ev) = apply_transition(state, entry.peer, now) {
                events.push(ev);
            }
            // The fired entry may have been superseded by fresher
            // heartbeats; re-arm at the detector's actual next deadline.
            if let Some(due) = state.detector.next_deadline() {
                self.wheel.lock().schedule(due, entry.peer, state.gen);
                state.armed = true;
            }
        }
        for ev in events {
            self.emit(ev);
        }
    }

    fn emit(&self, event: MembershipEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| match tx.try_send(event) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.events_dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
    }
}

/// Folds the detector's current output into the peer state, returning
/// the membership event if it transitioned.
fn apply_transition(state: &mut PeerState, peer: PeerId, at: f64) -> Option<MembershipEvent> {
    let out = state.detector.output();
    if out == state.last_output {
        return None;
    }
    state.last_output = out;
    let change = if out.is_trust() {
        state.counters.recoveries += 1;
        MembershipChange::Trusted
    } else {
        state.counters.suspicions += 1;
        MembershipChange::Suspected
    };
    Some(MembershipEvent { peer, at, change })
}

fn ticker(inner: Weak<Inner>, stop_rx: channel::Receiver<()>, period: Duration) {
    loop {
        match stop_rx.recv_timeout(period) {
            // Explicit stop, or every monitor handle (each holding a
            // sender clone via Inner) is gone.
            Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
            Err(RecvTimeoutError::Timeout) => {}
        }
        // Upgrade per sweep: the ticker must not keep the cluster alive.
        let Some(inner) = inner.upgrade() else { return };
        inner.on_tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterMonitor {
        ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn")
    }

    fn drive_trusted(m: &ClusterMonitor, peer: PeerId, eta: f64, beats: u64) {
        for i in 1..=beats {
            m.record(peer, Heartbeat::new(i, i as f64 * eta));
            std::thread::sleep(Duration::from_secs_f64(eta));
        }
    }

    #[test]
    fn peer_lifecycle_trust_then_suspect() {
        let m = cluster();
        m.add_peer(7, PeerConfig::new(0.02, 0.05)).unwrap();
        assert!(!m.status(7).unwrap().output.is_trust(), "starts suspected");

        drive_trusted(&m, 7, 0.02, 5);
        let st = m.status(7).unwrap();
        assert!(st.output.is_trust());
        assert_eq!(st.counters.heartbeats, 5);
        assert_eq!(st.counters.recoveries, 1);

        // Stop heartbeating: the wheel must drive the suspicion without
        // any further record() call.
        std::thread::sleep(Duration::from_millis(200));
        let st = m.status(7).unwrap();
        assert!(!st.output.is_trust(), "freshness expiry must suspect");
        assert_eq!(st.counters.suspicions, 1);
        assert!(m.stats().timers_fired > 0);
        m.shutdown();
    }

    #[test]
    fn add_remove_and_errors() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.05, 0.1)).unwrap();
        assert!(matches!(
            m.add_peer(1, PeerConfig::new(0.05, 0.1)),
            Err(ClusterError::DuplicatePeer(1))
        ));
        assert!(matches!(
            m.add_peer(2, PeerConfig::new(-1.0, 0.1)),
            Err(ClusterError::Params(_))
        ));
        assert_eq!(m.peer_count(), 1);
        assert!(m.remove_peer(1));
        assert!(!m.remove_peer(1));
        assert_eq!(m.peer_count(), 0);
        assert!(!m.record(1, Heartbeat::new(1, 0.0)), "unknown peer rejected");
        assert_eq!(m.stats().unknown_heartbeats, 1);
        m.shutdown();
    }

    #[test]
    fn readd_after_remove_gets_fresh_state() {
        let m = cluster();
        m.add_peer(3, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 3, 0.02, 4);
        assert!(m.status(3).unwrap().output.is_trust());
        m.remove_peer(3);
        m.add_peer(3, PeerConfig::new(0.02, 0.05)).unwrap();
        let st = m.status(3).unwrap();
        assert!(!st.output.is_trust(), "re-added peer starts suspected");
        assert_eq!(st.counters.heartbeats, 0, "counters reset on re-add");
        // Stale wheel entries from the first registration must not
        // corrupt the new one: wait past the old deadline.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(m.status(3).unwrap().counters.suspicions, 0);
        m.shutdown();
    }

    #[test]
    fn snapshot_splits_trusted_and_suspected() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        m.add_peer(2, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 1, 0.02, 5);
        let snap = m.snapshot();
        assert_eq!(snap.trusted(), vec![1]);
        assert_eq!(snap.suspected(), vec![2]);
        assert_eq!(snap.len(), 2);
        assert!(snap.taken_at() > 0.0);
        assert_eq!(snap.output(9), None);
        assert!(snap.is_trusted(&1) && !snap.is_trusted(&2) && !snap.is_trusted(&9));
        m.shutdown();
    }

    #[test]
    fn membership_events_in_order() {
        let m = cluster();
        let rx = m.subscribe();
        m.add_peer(5, PeerConfig::new(0.02, 0.04)).unwrap();
        drive_trusted(&m, 5, 0.02, 4);
        std::thread::sleep(Duration::from_millis(150)); // let it expire
        m.remove_peer(5);
        m.shutdown();

        let mut changes = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            if ev.peer == 5 {
                changes.push(ev.change);
            }
        }
        assert_eq!(
            changes,
            vec![
                MembershipChange::Added,
                MembershipChange::Trusted,
                MembershipChange::Suspected,
                MembershipChange::Removed,
            ]
        );
    }

    #[test]
    fn slow_subscribers_lose_events_but_never_block() {
        let m = ClusterMonitor::spawn(ClusterConfig {
            event_capacity: 1,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        let _rx = m.subscribe();
        for p in 0..8 {
            m.add_peer(p, PeerConfig::new(0.05, 0.1)).unwrap();
        }
        // Capacity 1: the first Added fits, the rest are dropped.
        assert_eq!(m.stats().events_dropped, 7);
        m.shutdown();
    }

    #[test]
    fn dropping_all_handles_stops_the_ticker() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.05, 0.1)).unwrap();
        drop(m);
        // Nothing to assert directly (the thread is detached); this test
        // exists so leak/deadlock detectors see the path exercised.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn elector_runs_over_cluster_snapshot() {
        use fd_runtime::{LeaderElector, Leadership};
        let m = cluster();
        for p in [1u64, 2, 3] {
            m.add_peer(p, PeerConfig::new(0.02, 0.05)).unwrap();
        }
        let elector = LeaderElector::new(vec![1u64, 2, 3]);
        assert_eq!(elector.current(&m.snapshot()), Leadership::NoLeader);
        drive_trusted(&m, 2, 0.02, 5);
        assert_eq!(elector.current(&m.snapshot()), Leadership::Leader(2));
        m.shutdown();
    }
}
