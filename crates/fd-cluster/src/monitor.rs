//! The cluster façade: N peers, one supervised ticker thread.
//!
//! [`ClusterMonitor`] owns the sharded registry, the timer wheel, and a
//! single ticker thread that sweeps the wheel every `tick` seconds. Each
//! peer runs its own NFD-E instance (per-peer `η`, `α`, estimation
//! window), so the paper's per-peer QoS analysis applies unchanged; the
//! cluster layer only changes *who drives the timers* — a wheel sweep
//! instead of a thread per peer — adding at most one `tick` of scheduling
//! slack to the detection time.
//!
//! # Crash-recovery model
//!
//! Three mechanisms harden the monitor for the crash-recovery setting
//! (processes crash, restart, and rejoin — the model the paper's §3
//! crash-stop analysis deliberately brackets out):
//!
//! * **Incarnations** — every heartbeat can carry the sender's
//!   incarnation ([`record_incarnated`](ClusterMonitor::record_incarnated)).
//!   A heartbeat below the peer's highest-seen incarnation is from a
//!   previous life — possibly delayed in flight across the crash — and
//!   is rejected (it must not refresh trust in the restarted process).
//!   A heartbeat *above* it atomically resets the peer's detector,
//!   freshness timer and estimator window: sequence numbers restart at
//!   1 in each life, so the old `max_seq` would otherwise discard the
//!   new life's heartbeats as stale.
//! * **State snapshots** — with [`ClusterConfig::snapshot_path`] set,
//!   the ticker periodically (and [`shutdown`](ClusterMonitor::shutdown)
//!   finally) persists every peer's estimator window, sequence/
//!   incarnation high-water marks and QoS counters via [`crate::snapshot`];
//!   [`spawn`](ClusterMonitor::spawn) restores them, so a restarted
//!   monitor resumes with *warm* §6.3 arrival estimates instead of
//!   re-converging from an empty window. Restored peers start suspected
//!   (fail-safe) and are re-trusted by their first fresh heartbeat.
//! * **Supervision** — the ticker runs under `catch_unwind`: a panic
//!   degrades the queryable [`ticker_health`](ClusterMonitor::ticker_health)
//!   and restarts the sweep loop with exponential backoff, up to
//!   [`ClusterConfig::max_ticker_restarts`]; exhausting the budget
//!   stops it (reported as [`Health::Stopped`]). Sweeps are bounded by
//!   [`ClusterConfig::max_expirations_per_sweep`] — an expiry storm
//!   defers the excess to the next sweep (counted) instead of holding
//!   shard locks for an unbounded stretch.
//!
//! Concurrency protocol (deadlock discipline): lock order is **shard,
//! then wheel**. Both the heartbeat-recording path and the ticker's
//! rescheduling path take a shard write lock first and the wheel mutex
//! inside it; the ticker's sweep itself takes the wheel mutex alone and
//! collects expirations into a local buffer before touching any shard.
//! Each peer has at most one outstanding wheel entry (`armed`), created
//! when a deadline first appears and renewed by the sweep; entries
//! surviving a remove/re-add or an incarnation reset are discarded by
//! generation mismatch, and a disarmed peer ignores firings outright —
//! so even a generation counter that wrapped all the way around cannot
//! revive a cancelled timer.

use crate::backoff;
use crate::registry::{ControlState, PeerCounters, PeerRegistry, PeerState, QosState};
use crate::snapshot::{self, ClusterStateSnapshot, ControlRecord, PeerRecord, SnapshotOrigin};
use crate::wheel::TimerWheel;
use crate::PeerId;
use crossbeam::channel::{self, RecvTimeoutError, TrySendError};
use fd_core::config::{configure_nfd_u, configure_nfd_u_best_effort, ConfigError};
use fd_core::detectors::{NfdE, ParamError};
use fd_core::estimate::{DelayMomentsEstimator, LossRateEstimator, WindowedLossRateEstimator};
use fd_core::{FailureDetector, Heartbeat, HysteresisConfig, HysteresisGate, NfdUParams};
use fd_metrics::{FdOutput, ObservedQos, OnlineQos, QosRequirements};
use fd_runtime::{Clock, Health, RuntimeError, TrustView, WallClock};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Cluster-wide tuning knobs (per-peer QoS lives in [`PeerConfig`]).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Registry shard count, rounded up to a power of two.
    pub shards: usize,
    /// Timer-wheel bucket count.
    pub wheel_slots: usize,
    /// Ticker period and wheel resolution, seconds. Expiry detection lags
    /// a true freshness point by at most this much (plus OS jitter).
    pub tick: f64,
    /// Capacity of each membership-event subscription channel; a slow
    /// subscriber loses events past this (counted, never blocking).
    pub event_capacity: usize,
    /// Most wheel expirations processed per sweep; the excess is pushed
    /// back onto the wheel for the next sweep and counted in
    /// [`ClusterStats::expirations_deferred`]. Bounds how long one sweep
    /// can hold shard locks during an expiry storm.
    pub max_expirations_per_sweep: usize,
    /// How many times a panicking ticker is restarted before the monitor
    /// gives up and reports [`Health::Stopped`].
    pub max_ticker_restarts: u64,
    /// Where to persist the state snapshot (see [`crate::snapshot`]).
    /// `None` disables persistence entirely.
    pub snapshot_path: Option<PathBuf>,
    /// Seconds between periodic snapshot writes (when a path is set).
    pub snapshot_interval: f64,
    /// First registration generation handed out. Production leaves this
    /// at 0; tests set it near `u64::MAX` to exercise generation
    /// wraparound in a bounded number of add/remove cycles.
    pub gen_origin: u64,
    /// Adaptive control-plane knobs (see [`ControlConfig`]). Only peers
    /// registered with [`PeerConfig::requirements`] participate.
    pub control: ControlConfig,
    /// Provenance stamped into every snapshot this monitor writes
    /// (federation nodes set their node id + incarnation so a takeover
    /// can verify whose state it is warm-starting from). `None` —
    /// the default — writes snapshots without an origin block.
    pub origin: Option<SnapshotOrigin>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            shards: 16,
            wheel_slots: 512,
            tick: 0.001,
            event_capacity: 1024,
            max_expirations_per_sweep: 4096,
            max_ticker_restarts: 8,
            snapshot_path: None,
            snapshot_interval: 1.0,
            gen_origin: 0,
            control: ControlConfig::default(),
            origin: None,
        }
    }
}

/// Knobs for the adaptive QoS control plane: a supervised thread that
/// periodically re-estimates each requirement-carrying peer's network
/// (§8.1.2 short/long conservative estimator pair), re-runs the §6.2
/// configurator against its declared `(T_D^U, T_MR^L, T_M^U)`, and
/// applies the resulting `α` (receiver-side, warm) while recommending
/// the resulting `η` to the sender (wire-v3 control entries).
#[derive(Debug, Clone, Copy)]
pub struct ControlConfig {
    /// Seconds between control rounds. Clamped to `[tick, 3600]` at
    /// spawn (NaN falls back to `tick`).
    pub period: f64,
    /// Sequence-number span of the short-horizon loss estimator.
    pub short_loss_span: u64,
    /// Sliding-window size of the short-horizon delay-moments estimator.
    pub short_delay_window: usize,
    /// Sliding-window size of the long-horizon delay-moments estimator.
    pub long_delay_window: usize,
    /// Delay observations required (long window) before the control
    /// loop acts on a peer; until then it keeps the registered
    /// parameters.
    pub min_delay_samples: usize,
    /// Smallest heartbeat period the control plane will configure,
    /// seconds. Under extreme variance the feasible-`η` search can
    /// return values that satisfy the math but no real sender could
    /// sustain (sub-millisecond floods); a configured `η` below this
    /// floor is treated as infeasibility and degrades the peer instead.
    pub min_eta: f64,
    /// Deadband + minimum dwell applied to gated parameter changes, so
    /// estimator noise cannot thrash `(η, α)` every round. Degradations
    /// bypass the gate (running known-wrong parameters is worse than
    /// changing twice).
    pub hysteresis: HysteresisConfig,
    /// Consecutive feasible control rounds required before a degraded
    /// peer is promoted back to nominal — the re-promotion hysteresis
    /// that keeps a flapping network from flapping the QoS state.
    pub promote_after: u32,
    /// Restart budget for the supervised control thread.
    pub max_restarts: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            period: 1.0,
            short_loss_span: 64,
            short_delay_window: 16,
            long_delay_window: 128,
            min_delay_samples: 8,
            min_eta: 1e-3,
            hysteresis: HysteresisConfig::default(),
            promote_after: 3,
            max_restarts: 8,
        }
    }
}

/// Per-peer detector parameters: the paper's `η` (heartbeat period) and
/// `α` (freshness slack), plus the NFD-E estimation window `n`.
#[derive(Debug, Clone, Copy)]
pub struct PeerConfig {
    /// Expected heartbeat period `η`, seconds.
    pub eta: f64,
    /// Freshness slack `α`, seconds: `τᵢ = EAᵢ + α`.
    pub alpha: f64,
    /// Sliding-window size for the expected-arrival estimator.
    pub window: usize,
    /// QoS requirements the adaptive control plane maintains for this
    /// peer (`None` opts the peer out of adaptation entirely: its
    /// registered `(η, α)` are never touched).
    pub requirements: Option<QosRequirements>,
}

impl PeerConfig {
    /// Parameters with the default estimation window (32 samples).
    pub fn new(eta: f64, alpha: f64) -> Self {
        Self { eta, alpha, window: 32, requirements: None }
    }

    /// Overrides the estimation window.
    pub fn window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Declares QoS requirements, opting the peer into the adaptive
    /// control plane.
    pub fn requirements(mut self, req: QosRequirements) -> Self {
        self.requirements = Some(req);
        self
    }
}

/// Why a cluster operation failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The peer is already registered.
    DuplicatePeer(PeerId),
    /// The per-peer detector parameters are invalid.
    Params(ParamError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DuplicatePeer(p) => write!(f, "peer {p} is already registered"),
            ClusterError::Params(e) => write!(f, "invalid peer parameters: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Params(e) => Some(e),
            ClusterError::DuplicatePeer(_) => None,
        }
    }
}

impl From<ParamError> for ClusterError {
    fn from(e: ParamError) -> Self {
        ClusterError::Params(e)
    }
}

/// What changed about a peer's membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The peer was registered (it starts suspected, like every NFD-E).
    Added,
    /// The peer was unregistered.
    Removed,
    /// Trust→Suspect (the paper's S-transition).
    Suspected,
    /// Suspect→Trust (T-transition).
    Trusted,
    /// The control plane found the peer's QoS requirements infeasible
    /// under the current network estimate and switched it to best-effort
    /// parameters (graceful degradation; the peer is still monitored).
    Degraded,
    /// A formerly degraded peer's requirements became feasible again
    /// (for [`ControlConfig::promote_after`] consecutive rounds) and
    /// configured parameters were restored.
    Promoted,
}

/// One membership transition, as delivered to subscribers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipEvent {
    /// The peer concerned.
    pub peer: PeerId,
    /// Cluster-clock time of the transition, seconds.
    pub at: f64,
    /// What happened.
    pub change: MembershipChange,
}

/// Point-in-time view of one peer.
#[derive(Debug, Clone, Copy)]
pub struct PeerStatus {
    /// The peer.
    pub peer: PeerId,
    /// Current detector output.
    pub output: FdOutput,
    /// Its QoS counters since registration.
    pub counters: PeerCounters,
    /// Its heartbeat period `η`.
    pub eta: f64,
    /// Its freshness slack `α`.
    pub alpha: f64,
    /// Highest sender incarnation seen (0 until the peer ever restarts).
    pub incarnation: u64,
    /// Samples currently held by the arrival estimator — nonzero right
    /// after a snapshot restore (*warm* estimates), zero on a cold add.
    pub estimator_samples: usize,
    /// Where the control plane has this peer: `Nominal` (requirements
    /// believed met, or none declared) or `Degraded` (best-effort).
    pub qos_state: QosState,
    /// Sender-side `η` the control plane recommends, if one is pending
    /// delivery/confirmation.
    pub recommended_eta: Option<f64>,
}

/// A consistent-enough point-in-time view of the whole cluster: each
/// peer's output as of the snapshot instant (outputs lag true freshness
/// expiry by at most one wheel tick).
///
/// Implements [`TrustView`], so a
/// [`LeaderElector`](fd_runtime::LeaderElector)`<PeerId>` can elect over
/// it directly.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    at: f64,
    outputs: HashMap<PeerId, FdOutput>,
}

impl ClusterSnapshot {
    /// Cluster-clock time the snapshot was taken.
    pub fn taken_at(&self) -> f64 {
        self.at
    }

    /// This peer's output at snapshot time, `None` if not registered.
    pub fn output(&self, peer: PeerId) -> Option<FdOutput> {
        self.outputs.get(&peer).copied()
    }

    /// Peers trusted at snapshot time, ascending.
    pub fn trusted(&self) -> Vec<PeerId> {
        self.select(|o| o.is_trust())
    }

    /// Peers suspected at snapshot time, ascending.
    pub fn suspected(&self) -> Vec<PeerId> {
        self.select(|o| !o.is_trust())
    }

    /// Number of peers in the snapshot.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the snapshot holds no peers.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    fn select(&self, keep: impl Fn(FdOutput) -> bool) -> Vec<PeerId> {
        let mut v: Vec<PeerId> =
            self.outputs.iter().filter(|(_, o)| keep(**o)).map(|(p, _)| *p).collect();
        v.sort_unstable();
        v
    }
}

impl TrustView<PeerId> for ClusterSnapshot {
    fn is_trusted(&self, candidate: &PeerId) -> bool {
        self.output(*candidate).is_some_and(|o| o.is_trust())
    }
}

/// One peer's live QoS view, as returned by
/// [`ClusterMonitor::qos_snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct PeerQos {
    /// The peer.
    pub peer: PeerId,
    /// Current detector output.
    pub output: FdOutput,
    /// Transition/heartbeat counters since registration.
    pub counters: PeerCounters,
    /// The online accuracy metrics as of the snapshot instant.
    pub qos: ObservedQos,
    /// Nominal vs degraded, per the control plane.
    pub qos_state: QosState,
}

/// Cluster-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Registered peers.
    pub peers: usize,
    /// Ticker sweeps since spawn.
    pub ticks: u64,
    /// Wheel expirations that matched a live registration.
    pub timers_fired: u64,
    /// Membership events dropped because a subscriber's channel was full
    /// (the subscriber is alive but not draining; it stays subscribed).
    pub events_dropped: u64,
    /// Subscribers pruned because their receiver was dropped. Distinct
    /// from `events_dropped`: a disconnected subscriber is gone and costs
    /// nothing further, a full one keeps losing events.
    pub subscribers_disconnected: u64,
    /// Heartbeats recorded for peers not (or no longer) registered.
    pub unknown_heartbeats: u64,
    /// Heartbeats rejected for carrying an incarnation below the peer's
    /// highest seen — previous-life traffic that must not refresh trust.
    pub stale_incarnation_rejects: u64,
    /// Peer detector resets triggered by a newer incarnation (observed
    /// peer restarts).
    pub incarnation_resets: u64,
    /// Times the panicking ticker loop was restarted by its supervisor.
    pub ticker_restarts: u64,
    /// Wheel expirations pushed to a later sweep by the per-sweep bound.
    pub expirations_deferred: u64,
    /// Receiver-side heartbeat entries shed under overload (reported by
    /// [`ClusterReceiver`](crate::ClusterReceiver)).
    pub entries_shed: u64,
    /// State snapshots successfully persisted.
    pub snapshots_written: u64,
    /// Snapshot reads or writes that failed (corrupt file, I/O error,
    /// invalid restored parameters). Failures are fail-safe: the
    /// affected state starts cold instead.
    pub snapshot_errors: u64,
    /// Peers restored warm from the snapshot at spawn.
    pub peers_restored: u64,
    /// Control-plane parameter applications (gated retunes, forced
    /// degradations and promotions alike).
    pub reconfigurations: u64,
    /// Peers currently running best-effort (degraded) parameters.
    pub degraded_peers: usize,
    /// Nominal→Degraded transitions since spawn.
    pub degradations: u64,
    /// Degraded→Nominal (promotion) transitions since spawn.
    pub promotions: u64,
    /// Control rounds executed (by the control thread or
    /// [`ClusterMonitor::run_control_round`]).
    pub control_rounds: u64,
    /// Times the panicking control loop was restarted by its supervisor.
    pub control_restarts: u64,
}

struct Inner {
    clock: WallClock,
    /// Added to every clock reading: the restored snapshot's `taken_at`,
    /// so cluster time continues across a restart instead of restarting
    /// at 0 (which would violate detector time monotonicity for
    /// restored per-peer state).
    time_base: f64,
    tick: f64,
    registry: PeerRegistry,
    wheel: Mutex<TimerWheel>,
    next_gen: AtomicU64,
    subscribers: Mutex<Vec<channel::Sender<MembershipEvent>>>,
    event_capacity: usize,
    max_expirations: usize,
    max_ticker_restarts: u64,
    snapshot_path: Option<PathBuf>,
    snapshot_interval: f64,
    /// Provenance stamped into written snapshots (see
    /// [`ClusterConfig::origin`]).
    origin: Option<SnapshotOrigin>,
    last_snapshot: Mutex<f64>,
    ticker_health: Mutex<Health>,
    inject_ticker_panic: AtomicBool,
    ticks: AtomicU64,
    timers_fired: AtomicU64,
    events_dropped: AtomicU64,
    subscribers_disconnected: AtomicU64,
    unknown_heartbeats: AtomicU64,
    stale_incarnation: AtomicU64,
    incarnation_resets: AtomicU64,
    ticker_restarts: AtomicU64,
    expirations_deferred: AtomicU64,
    entries_shed: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_errors: AtomicU64,
    peers_restored: AtomicU64,
    /// Sanitized control-plane configuration.
    control: ControlConfig,
    control_health: Mutex<Health>,
    inject_control_panic: AtomicBool,
    /// Pending sender-side η recommendations, latest per peer, drained
    /// by whoever ships wire-v3 control entries.
    eta_recs: Mutex<HashMap<PeerId, f64>>,
    reconfigurations: AtomicU64,
    degraded_peers: AtomicU64,
    degradations: AtomicU64,
    promotions: AtomicU64,
    control_rounds: AtomicU64,
    control_restarts: AtomicU64,
    /// Held so the ticker (owning the receiver) observes disconnection
    /// when the last monitor handle drops without an explicit shutdown.
    _stop_tx: channel::Sender<()>,
    /// Same role, for the control thread.
    _ctl_stop_tx: channel::Sender<()>,
}

/// Monitors N peers from one node with a single ticker thread.
///
/// Cheaply cloneable; all clones share the same cluster. The ticker
/// stops on [`shutdown`](ClusterMonitor::shutdown) or when the last
/// handle drops.
#[derive(Clone)]
pub struct ClusterMonitor {
    inner: Arc<Inner>,
    ticker: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
    controller: Arc<Mutex<Option<std::thread::JoinHandle<()>>>>,
}

impl fmt::Debug for ClusterMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterMonitor")
            .field("peers", &self.inner.registry.len())
            .field("tick", &self.inner.tick)
            .finish()
    }
}

impl ClusterMonitor {
    /// Starts a cluster monitor: allocates the registry and wheel and
    /// spawns the (supervised) ticker thread.
    ///
    /// With [`ClusterConfig::snapshot_path`] set and a readable snapshot
    /// present, every persisted peer is restored *warm*: estimator
    /// window, sequence/incarnation high-water marks and QoS counters
    /// carry over, cluster time resumes from the snapshot's `taken_at`,
    /// and each restored peer starts suspected until its first fresh
    /// heartbeat (fail-safe: a restored window is evidence about the
    /// past, not about who is alive *now*). A corrupt or unreadable
    /// snapshot is counted in [`ClusterStats::snapshot_errors`] and
    /// ignored — the monitor starts cold; otherwise time 0 is this
    /// instant.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.tick` is not finite and positive or
    /// `cfg.wheel_slots` is zero (delegated validation).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the ticker thread cannot start.
    pub fn spawn(cfg: ClusterConfig) -> Result<Self, RuntimeError> {
        let mut time_base = 0.0;
        let mut restored: Vec<PeerRecord> = Vec::new();
        let mut snapshot_errors = 0u64;
        if let Some(path) = &cfg.snapshot_path {
            match snapshot::read_snapshot_file(path) {
                Ok(Some(snap)) => {
                    time_base = snap.taken_at;
                    restored = snap.peers;
                }
                Ok(None) => {}
                Err(_) => snapshot_errors += 1, // cold start is fail-safe
            }
        }
        // Sanitize the control config once; everything downstream relies
        // on these invariants (estimator constructors panic on zero
        // windows, Duration::from_secs_f64 on NaN).
        let mut control = cfg.control;
        control.period = control.period.max(cfg.tick).min(3600.0);
        control.short_loss_span = control.short_loss_span.max(1);
        control.short_delay_window = control.short_delay_window.max(2);
        control.long_delay_window = control.long_delay_window.max(2);
        control.min_delay_samples = control.min_delay_samples.max(2);
        control.promote_after = control.promote_after.max(1);
        if !(control.min_eta.is_finite() && control.min_eta > 0.0) {
            control.min_eta = 0.0;
        }
        let (stop_tx, stop_rx) = channel::bounded::<()>(1);
        let (ctl_stop_tx, ctl_stop_rx) = channel::bounded::<()>(1);
        let inner = Arc::new(Inner {
            clock: WallClock::new(),
            time_base,
            tick: cfg.tick,
            registry: PeerRegistry::new(cfg.shards),
            wheel: Mutex::new(TimerWheel::new(cfg.wheel_slots, cfg.tick)),
            next_gen: AtomicU64::new(cfg.gen_origin),
            subscribers: Mutex::new(Vec::new()),
            event_capacity: cfg.event_capacity.max(1),
            max_expirations: cfg.max_expirations_per_sweep.max(1),
            max_ticker_restarts: cfg.max_ticker_restarts,
            snapshot_path: cfg.snapshot_path.clone(),
            snapshot_interval: cfg.snapshot_interval.max(cfg.tick),
            origin: cfg.origin,
            last_snapshot: Mutex::new(time_base),
            ticker_health: Mutex::new(Health::Healthy),
            inject_ticker_panic: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            timers_fired: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            subscribers_disconnected: AtomicU64::new(0),
            unknown_heartbeats: AtomicU64::new(0),
            stale_incarnation: AtomicU64::new(0),
            incarnation_resets: AtomicU64::new(0),
            ticker_restarts: AtomicU64::new(0),
            expirations_deferred: AtomicU64::new(0),
            entries_shed: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(snapshot_errors),
            peers_restored: AtomicU64::new(0),
            control,
            control_health: Mutex::new(Health::Healthy),
            inject_control_panic: AtomicBool::new(false),
            eta_recs: Mutex::new(HashMap::new()),
            reconfigurations: AtomicU64::new(0),
            degraded_peers: AtomicU64::new(0),
            degradations: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            control_rounds: AtomicU64::new(0),
            control_restarts: AtomicU64::new(0),
            _stop_tx: stop_tx,
            _ctl_stop_tx: ctl_stop_tx,
        });
        for rec in restored {
            match NfdE::restore(rec.eta, rec.alpha, rec.window, &rec.samples, rec.max_seq) {
                Ok(detector) => {
                    let gen = inner.next_gen.fetch_add(1, Ordering::Relaxed);
                    // Continue the persisted QoS observation window when
                    // the tracker state is present and sane; a v1
                    // snapshot (or invalid state, counted as an error)
                    // starts a fresh window. Either way the tracker is
                    // driven to Suspect to match the fail-safe restore of
                    // `last_output`.
                    let mut qos = match rec.qos.map(OnlineQos::from_state) {
                        Some(Ok(q)) => q,
                        Some(Err(_)) => {
                            inner.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                            OnlineQos::new(time_base, FdOutput::Suspect)
                        }
                        None => OnlineQos::new(time_base, FdOutput::Suspect),
                    };
                    qos.observe(time_base, FdOutput::Suspect);
                    // Control state restores with warm bookkeeping
                    // (requirements, lifetime loss counts, QoS state,
                    // dwell clock) but fresh windowed estimators — the
                    // short horizons are about the network *now* and
                    // refill within one window.
                    let control = match rec.control.as_ref() {
                        None => None,
                        Some(c) => match QosRequirements::new(
                            c.t_d_upper,
                            c.t_mr_lower,
                            c.t_m_upper,
                        ) {
                            Ok(requirements) => {
                                let cc = &inner.control;
                                let mut gate = HysteresisGate::new(cc.hysteresis);
                                gate.set_last_change(c.last_change);
                                Some(ControlState {
                                    requirements,
                                    short_loss: WindowedLossRateEstimator::new(cc.short_loss_span),
                                    long_loss: LossRateEstimator::restore(
                                        c.loss_highest,
                                        c.loss_received,
                                    ),
                                    short_delay: DelayMomentsEstimator::new(cc.short_delay_window),
                                    long_delay: DelayMomentsEstimator::new(cc.long_delay_window),
                                    gate,
                                    qos_state: if c.degraded {
                                        QosState::Degraded
                                    } else {
                                        QosState::Nominal
                                    },
                                    reconfigurations: c.reconfigurations,
                                    degradations: c.degradations,
                                    promotions: c.promotions,
                                    feasible_streak: c.feasible_streak,
                                    recommended_eta: c.recommended_eta,
                                })
                            }
                            Err(_) => {
                                inner.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                        },
                    };
                    if control.as_ref().is_some_and(|c| c.qos_state == QosState::Degraded) {
                        inner.degraded_peers.fetch_add(1, Ordering::Relaxed);
                    }
                    let state = PeerState {
                        detector,
                        last_output: FdOutput::Suspect,
                        incarnation: rec.incarnation,
                        gen,
                        armed: false,
                        last_seen: time_base,
                        counters: rec.counters,
                        qos,
                        control,
                    };
                    inner.registry.shard(rec.peer).write().insert(rec.peer, state);
                    inner.peers_restored.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    inner.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let weak = Arc::downgrade(&inner);
        let period = Duration::from_secs_f64(cfg.tick);
        let handle = std::thread::Builder::new()
            .name("fd-cluster-ticker".into())
            .spawn(move || ticker(weak, stop_rx, period))
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-ticker", source: e })?;
        let ctl_weak = Arc::downgrade(&inner);
        let ctl_period = Duration::from_secs_f64(inner.control.period);
        let ctl_handle = std::thread::Builder::new()
            .name("fd-cluster-control".into())
            .spawn(move || controller(ctl_weak, ctl_stop_rx, ctl_period))
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-control", source: e })?;
        Ok(Self {
            inner,
            ticker: Arc::new(Mutex::new(Some(handle))),
            controller: Arc::new(Mutex::new(Some(ctl_handle))),
        })
    }

    /// Seconds since the cluster started, on its own clock — the
    /// timescale of snapshots, events and [`record_at`](Self::record_at).
    /// After a snapshot restore this continues from the snapshot's
    /// `taken_at` rather than restarting at 0.
    pub fn now(&self) -> f64 {
        self.inner.now()
    }

    /// Registers a peer with its own detector parameters. The peer
    /// starts suspected (every NFD-E does) and is trusted once its first
    /// heartbeat arrives.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DuplicatePeer`] if already registered,
    /// [`ClusterError::Params`] if `cfg` is invalid.
    pub fn add_peer(&self, peer: PeerId, cfg: PeerConfig) -> Result<(), ClusterError> {
        self.add_peer_inner(peer, cfg, 0)
    }

    /// Registers a peer whose incarnation high-water mark starts at
    /// `incarnation` instead of 0 — the federation takeover path: a node
    /// adopting an orphaned partition seeds each peer with the highest
    /// incarnation the dead node had gossiped, so heartbeats delayed in
    /// flight from a *previous life* of the peer cannot refresh trust in
    /// it under its new owner. The peer still starts suspected
    /// (fail-safe) and is trusted on its first fresh heartbeat.
    ///
    /// # Errors
    ///
    /// Same as [`add_peer`](Self::add_peer).
    pub fn add_peer_warm(
        &self,
        peer: PeerId,
        cfg: PeerConfig,
        incarnation: u64,
    ) -> Result<(), ClusterError> {
        self.add_peer_inner(peer, cfg, incarnation)
    }

    fn add_peer_inner(
        &self,
        peer: PeerId,
        cfg: PeerConfig,
        incarnation: u64,
    ) -> Result<(), ClusterError> {
        let detector = NfdE::new(cfg.eta, cfg.alpha, cfg.window)?;
        let inner = &*self.inner;
        let now = inner.now();
        let gen = inner.next_gen.fetch_add(1, Ordering::Relaxed);
        {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            if guard.contains_key(&peer) {
                return Err(ClusterError::DuplicatePeer(peer));
            }
            let cc = &inner.control;
            let control = cfg.requirements.map(|requirements| ControlState {
                requirements,
                short_loss: WindowedLossRateEstimator::new(cc.short_loss_span),
                long_loss: LossRateEstimator::new(),
                short_delay: DelayMomentsEstimator::new(cc.short_delay_window),
                long_delay: DelayMomentsEstimator::new(cc.long_delay_window),
                gate: HysteresisGate::new(cc.hysteresis),
                qos_state: QosState::Nominal,
                reconfigurations: 0,
                degradations: 0,
                promotions: 0,
                feasible_streak: 0,
                recommended_eta: None,
            });
            let mut state = PeerState {
                detector,
                last_output: FdOutput::Suspect,
                incarnation,
                gen,
                armed: false,
                last_seen: now,
                counters: PeerCounters::default(),
                qos: OnlineQos::new(now, FdOutput::Suspect),
                control,
            };
            state.detector.advance(now);
            state.last_output = state.detector.output();
            if let Some(due) = state.detector.next_deadline() {
                inner.wheel.lock().schedule(due, peer, gen);
                state.armed = true;
            }
            guard.insert(peer, state);
        }
        inner.emit(MembershipEvent { peer, at: now, change: MembershipChange::Added });
        Ok(())
    }

    /// Unregisters a peer; returns whether it was registered.
    ///
    /// Removal is complete: the peer's QoS counters, estimator state and
    /// incarnation high-water mark are dropped with its registry entry,
    /// and any pending wheel timer is cancelled (lazily — the entry's
    /// generation no longer matches anything, so when it fires the sweep
    /// discards it). A subsequent [`add_peer`](Self::add_peer) therefore
    /// starts a completely fresh monitoring epoch: no ghost `Suspected`
    /// event from the old registration's timer can fire against the new
    /// one, even if the peer returns with a new incarnation.
    pub fn remove_peer(&self, peer: PeerId) -> bool {
        let inner = &*self.inner;
        let now = inner.now();
        let removed = inner.registry.shard(peer).write().remove(&peer);
        if removed
            .as_ref()
            .is_some_and(|s| s.control.as_ref().is_some_and(|c| c.qos_state == QosState::Degraded))
        {
            inner.degraded_peers.fetch_sub(1, Ordering::Relaxed);
        }
        let removed = removed.is_some();
        if removed {
            inner.eta_recs.lock().remove(&peer);
            inner.emit(MembershipEvent { peer, at: now, change: MembershipChange::Removed });
        }
        removed
    }

    /// Records a heartbeat from `peer` at the current cluster time, with
    /// no incarnation (treated as incarnation 0 — the crash-stop model,
    /// and the decoding of v1 wire frames).
    /// Returns `false` (and counts it) if the heartbeat was not
    /// accepted: the peer is unregistered, or it has already been seen
    /// at a higher incarnation.
    pub fn record(&self, peer: PeerId, hb: Heartbeat) -> bool {
        let now = self.inner.now();
        self.record_inner(peer, now, 0, hb)
    }

    /// Records a heartbeat carrying the sender's incarnation (wire v2).
    ///
    /// * `incarnation` below the peer's highest seen → rejected, counted
    ///   in [`PeerCounters::stale_incarnation`] and
    ///   [`ClusterStats::stale_incarnation_rejects`]; returns `false`.
    /// * `incarnation` above it → the peer's detector, estimator window
    ///   and freshness timer are atomically reset (new life, sequence
    ///   numbers restart), counted in [`PeerCounters::incarnation_resets`],
    ///   then the heartbeat is applied to the fresh detector.
    /// * Equal → normal processing.
    pub fn record_incarnated(&self, peer: PeerId, incarnation: u64, hb: Heartbeat) -> bool {
        let now = self.inner.now();
        self.record_inner(peer, now, incarnation, hb)
    }

    /// Records a heartbeat at an explicit cluster-clock time (for tests
    /// and drivers that batch timestamps; normally use
    /// [`record`](Self::record)). Times earlier than the peer's latest
    /// are clamped — detector time is monotone.
    pub fn record_at(&self, peer: PeerId, now: f64, hb: Heartbeat) -> bool {
        self.record_inner(peer, now, 0, hb)
    }

    /// [`record_at`](Self::record_at) with an explicit sender
    /// incarnation (see [`record_incarnated`](Self::record_incarnated)).
    pub fn record_at_incarnated(
        &self,
        peer: PeerId,
        now: f64,
        incarnation: u64,
        hb: Heartbeat,
    ) -> bool {
        self.record_inner(peer, now, incarnation, hb)
    }

    /// Advances every peer's detector to the explicit cluster-clock
    /// time `now`, applying any freshness expirations immediately — the
    /// deterministic counterpart of the wall-clock ticker sweep, for
    /// drivers (simulation, federation harness, fd-smc scenarios) that
    /// feed [`record_at`](Self::record_at) with scripted timestamps and
    /// need suspicion transitions at exactly those times rather than at
    /// the mercy of a real ticker. Times earlier than a peer's latest
    /// are clamped per peer (detector time is monotone). Membership
    /// events are emitted after all shard locks are released; returns
    /// how many were emitted. A non-finite `now` is ignored.
    pub fn advance_to(&self, now: f64) -> usize {
        if !now.is_finite() {
            return 0;
        }
        let inner = &*self.inner;
        let mut events = Vec::new();
        for shard in inner.registry.shards() {
            let mut guard = shard.write();
            for (peer, state) in guard.iter_mut() {
                let t = now.max(state.last_seen);
                state.last_seen = t;
                state.detector.advance(t);
                if let Some(ev) = apply_transition(state, *peer, t) {
                    events.push(ev);
                }
            }
        }
        let n = events.len();
        for ev in events {
            inner.emit(ev);
        }
        n
    }

    fn record_inner(&self, peer: PeerId, now: f64, incarnation: u64, hb: Heartbeat) -> bool {
        let inner = &*self.inner;
        let event;
        {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&peer) else {
                inner.unknown_heartbeats.fetch_add(1, Ordering::Relaxed);
                return false;
            };
            if incarnation < state.incarnation {
                state.counters.stale_incarnation += 1;
                inner.stale_incarnation.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if incarnation > state.incarnation {
                // New life of the peer: rebuild the detector with the
                // same parameters (they were validated at add time) and
                // disarm under the same shard lock, so no path can
                // observe the new incarnation with old freshness state.
                // The old wheel entry dies by generation mismatch.
                let (eta, alpha, window) =
                    (state.detector.eta(), state.detector.alpha(), state.detector.window());
                state.detector =
                    NfdE::new(eta, alpha, window).expect("parameters validated at add_peer");
                state.incarnation = incarnation;
                state.gen = inner.next_gen.fetch_add(1, Ordering::Relaxed);
                state.armed = false;
                state.counters.incarnation_resets += 1;
                inner.incarnation_resets.fetch_add(1, Ordering::Relaxed);
                if let Some(ctl) = state.control.as_mut() {
                    // The new life restarts sequence numbers; the old
                    // loss windows would discard them all as ancient.
                    ctl.reset_sequences();
                }
            }
            let now = now.max(state.last_seen);
            state.last_seen = now;
            state.counters.heartbeats += 1;
            let fresh = hb.seq > state.detector.max_seq_received().unwrap_or(0);
            if !fresh {
                state.counters.stale += 1;
            }
            if let Some(ctl) = state.control.as_mut() {
                ctl.observe(hb.seq, hb.send_time, now, fresh);
            }
            state.detector.on_heartbeat(now, hb);
            event = apply_transition(state, peer, now);
            if !state.armed {
                if let Some(due) = state.detector.next_deadline() {
                    inner.wheel.lock().schedule(due, peer, state.gen);
                    state.armed = true;
                }
            }
        }
        if let Some(ev) = event {
            inner.emit(ev);
        }
        true
    }

    /// One peer's live QoS metrics as of now — the paper's accuracy
    /// metrics (`P_A`, `E(T_MR)`, `E(T_M)`, `E(T_G)`, `λ_M`) measured
    /// online over this peer's output stream since registration. `None`
    /// if the peer is not registered.
    pub fn qos(&self, peer: PeerId) -> Option<ObservedQos> {
        let now = self.inner.now();
        let guard = self.inner.registry.shard(peer).read();
        guard.get(&peer).map(|s| s.qos.observed(now))
    }

    /// Every peer's live QoS, output and counters in one pass
    /// (read-locking shards one at a time), sorted by peer id — the
    /// collection the metrics exporter renders.
    pub fn qos_snapshot(&self) -> Vec<PeerQos> {
        let inner = &*self.inner;
        let now = inner.now();
        let mut out = Vec::new();
        for shard in inner.registry.shards() {
            for (peer, state) in shard.read().iter() {
                out.push(PeerQos {
                    peer: *peer,
                    output: state.last_output,
                    counters: state.counters,
                    qos: state.qos.observed(now),
                    qos_state: state
                        .control
                        .as_ref()
                        .map(|c| c.qos_state)
                        .unwrap_or_default(),
                });
            }
        }
        out.sort_unstable_by_key(|p| p.peer);
        out
    }

    /// One peer's current status, `None` if not registered.
    pub fn status(&self, peer: PeerId) -> Option<PeerStatus> {
        let guard = self.inner.registry.shard(peer).read();
        guard.get(&peer).map(|s| PeerStatus {
            peer,
            output: s.last_output,
            counters: s.counters,
            eta: s.detector.eta(),
            alpha: s.detector.alpha(),
            incarnation: s.incarnation,
            estimator_samples: s.detector.estimator_len(),
            qos_state: s.control.as_ref().map(|c| c.qos_state).unwrap_or_default(),
            recommended_eta: s.control.as_ref().and_then(|c| c.recommended_eta),
        })
    }

    /// A point-in-time view of every peer's output (read-locking shards
    /// one at a time; outputs lag true expiry by at most one tick).
    pub fn snapshot(&self) -> ClusterSnapshot {
        let inner = &*self.inner;
        let at = inner.now();
        let mut outputs = HashMap::new();
        for shard in inner.registry.shards() {
            for (peer, state) in shard.read().iter() {
                outputs.insert(*peer, state.last_output);
            }
        }
        ClusterSnapshot { at, outputs }
    }

    /// Persists the state snapshot right now (if a
    /// [`ClusterConfig::snapshot_path`] was configured). Returns whether
    /// a snapshot was written; failures are counted in
    /// [`ClusterStats::snapshot_errors`].
    pub fn save_snapshot(&self) -> bool {
        self.inner.save_snapshot_if_configured()
    }

    /// Subscribes to membership transitions. The channel is bounded by
    /// the configured `event_capacity`: a subscriber that stops draining
    /// loses further events (counted in
    /// [`ClusterStats::events_dropped`]) rather than blocking the
    /// cluster. Dropping the receiver unsubscribes.
    pub fn subscribe(&self) -> channel::Receiver<MembershipEvent> {
        let (tx, rx) = channel::bounded(self.inner.event_capacity);
        self.inner.subscribers.lock().push(tx);
        rx
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.inner.registry.len()
    }

    /// Which registry shard `peer` hashes to — for diagnostics and for
    /// chaos tests that partition exactly one shard's peers.
    pub fn shard_index(&self, peer: PeerId) -> usize {
        self.inner.registry.shard_index(peer)
    }

    /// Health of the supervised ticker thread: `Healthy` until its first
    /// panic, `Degraded` (with the latest panic message) while the
    /// restart budget lasts, `Stopped` after shutdown or budget
    /// exhaustion.
    pub fn ticker_health(&self) -> Health {
        self.inner.ticker_health.lock().clone()
    }

    /// Fault-injection hook: makes the next ticker sweep panic, as if a
    /// detector invariant had tripped. The supervisor must catch it,
    /// degrade [`ticker_health`](Self::ticker_health) and restart the
    /// sweep loop. For chaos tests; never called on production paths.
    pub fn inject_ticker_panic(&self) {
        self.inner.inject_ticker_panic.store(true, Ordering::Relaxed);
    }

    /// Cluster-wide counters.
    pub fn stats(&self) -> ClusterStats {
        let inner = &*self.inner;
        ClusterStats {
            peers: inner.registry.len(),
            ticks: inner.ticks.load(Ordering::Relaxed),
            timers_fired: inner.timers_fired.load(Ordering::Relaxed),
            events_dropped: inner.events_dropped.load(Ordering::Relaxed),
            subscribers_disconnected: inner.subscribers_disconnected.load(Ordering::Relaxed),
            unknown_heartbeats: inner.unknown_heartbeats.load(Ordering::Relaxed),
            stale_incarnation_rejects: inner.stale_incarnation.load(Ordering::Relaxed),
            incarnation_resets: inner.incarnation_resets.load(Ordering::Relaxed),
            ticker_restarts: inner.ticker_restarts.load(Ordering::Relaxed),
            expirations_deferred: inner.expirations_deferred.load(Ordering::Relaxed),
            entries_shed: inner.entries_shed.load(Ordering::Relaxed),
            snapshots_written: inner.snapshots_written.load(Ordering::Relaxed),
            snapshot_errors: inner.snapshot_errors.load(Ordering::Relaxed),
            peers_restored: inner.peers_restored.load(Ordering::Relaxed),
            reconfigurations: inner.reconfigurations.load(Ordering::Relaxed),
            degraded_peers: inner.degraded_peers.load(Ordering::Relaxed) as usize,
            degradations: inner.degradations.load(Ordering::Relaxed),
            promotions: inner.promotions.load(Ordering::Relaxed),
            control_rounds: inner.control_rounds.load(Ordering::Relaxed),
            control_restarts: inner.control_restarts.load(Ordering::Relaxed),
        }
    }

    /// Stops the ticker thread, waits for it, and writes a final state
    /// snapshot (when configured). Idempotent across clones; the
    /// registry remains readable afterwards, but no further suspicions
    /// will be driven.
    pub fn shutdown(&self) {
        // Closing our stop slot is not enough (clones hold senders too);
        // send an explicit stop, then join.
        let _ = self.inner._stop_tx.try_send(());
        let _ = self.inner._ctl_stop_tx.try_send(());
        if let Some(handle) = self.controller.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.ticker.lock().take() {
            let _ = handle.join();
            self.inner.save_snapshot_if_configured();
        }
        *self.inner.ticker_health.lock() = Health::Stopped;
        *self.inner.control_health.lock() = Health::Stopped;
    }

    /// Health of the supervised control thread (same lifecycle as
    /// [`ticker_health`](Self::ticker_health)).
    pub fn control_health(&self) -> Health {
        self.inner.control_health.lock().clone()
    }

    /// Fault-injection hook: makes the next control round panic, to
    /// exercise the control thread's supervisor. For chaos tests.
    pub fn inject_control_panic(&self) {
        self.inner.inject_control_panic.store(true, Ordering::Relaxed);
    }

    /// Runs one adaptive control round synchronously — exactly what the
    /// supervised control thread does every period. Returns the number
    /// of peers whose detector parameters were (re)applied. Exposed so
    /// tests and batch drivers (simulated time) can step the control
    /// plane deterministically.
    pub fn run_control_round(&self) -> u64 {
        self.inner.control_round()
    }

    /// Drains the pending sender-side `η` recommendations (latest per
    /// peer, ascending by id) accumulated by control rounds. The caller
    /// ships them to the senders as wire-v3 control entries (see
    /// [`ControlSender`](crate::ControlSender)); each peer's entry stays
    /// pending in [`PeerStatus::recommended_eta`] until
    /// [`apply_eta`](Self::apply_eta) confirms it.
    pub fn drain_eta_recommendations(&self) -> Vec<(PeerId, f64)> {
        let mut recs: Vec<(PeerId, f64)> = self.inner.eta_recs.lock().drain().collect();
        recs.sort_unstable_by_key(|(peer, _)| *peer);
        recs
    }

    /// Applies a new freshness slack `α` to one peer, *warm*: the
    /// arrival-estimator samples, sequence high-water mark and QoS
    /// tracker all carry over, so the freshness deadline shifts by
    /// exactly Δα with no estimator re-convergence. This is the same
    /// transition the control plane performs; it is public for drivers
    /// that run their own configurator. Returns `false` if the peer is
    /// unknown or `α` is invalid.
    pub fn apply_alpha(&self, peer: PeerId, alpha: f64) -> bool {
        let inner = &*self.inner;
        let now = inner.now();
        let mut events = Vec::new();
        let applied = {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&peer) else {
                return false;
            };
            let params = NfdUParams { eta: state.detector.eta(), alpha };
            inner.swap_alpha(peer, state, now, params, &mut events)
        };
        for ev in events {
            inner.emit(ev);
        }
        applied
    }

    /// Confirms that `peer`'s *sender* now emits heartbeats every `eta`
    /// seconds and rebuilds the receiver-side detector to match. Unlike
    /// an `α` change, a new `η` invalidates the normalized arrival
    /// samples (they embed the old period), so the estimator window
    /// restarts cold: the peer dips to Suspect until its next heartbeat,
    /// exactly as after an incarnation reset. QoS counters and the
    /// online tracker carry over. Returns `false` if the peer is
    /// unknown or `eta` is invalid.
    pub fn apply_eta(&self, peer: PeerId, eta: f64) -> bool {
        let inner = &*self.inner;
        let now = inner.now();
        let mut events = Vec::new();
        let applied = {
            let shard = inner.registry.shard(peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&peer) else {
                return false;
            };
            let alpha = state.detector.alpha();
            let window = state.detector.window();
            let Ok(detector) = NfdE::new(eta, alpha, window) else {
                return false;
            };
            let at = now.max(state.last_seen);
            state.detector = detector;
            state.detector.advance(at);
            state.last_seen = at;
            state.gen = inner.next_gen.fetch_add(1, Ordering::Relaxed);
            state.armed = false;
            if let Some(ev) = apply_transition(state, peer, at) {
                events.push(ev);
            }
            if let Some(due) = state.detector.next_deadline() {
                inner.wheel.lock().schedule(due, peer, state.gen);
                state.armed = true;
            }
            if let Some(ctl) = state.control.as_mut() {
                if ctl.recommended_eta.is_some_and(|r| {
                    HysteresisGate::rel_change(r, eta) <= f64::EPSILON
                }) {
                    ctl.recommended_eta = None;
                }
            }
            true
        };
        for ev in events {
            inner.emit(ev);
        }
        applied
    }

    /// Counts receiver-side shed entries into [`ClusterStats`].
    pub(crate) fn note_entries_shed(&self, n: u64) {
        self.inner.entries_shed.fetch_add(n, Ordering::Relaxed);
    }
}

impl Inner {
    fn now(&self) -> f64 {
        self.clock.now() + self.time_base
    }

    /// One ticker sweep: collect due wheel entries (bounded), then drive
    /// each affected peer's detector (shard write lock, wheel re-arm
    /// inside).
    fn on_tick(&self) {
        if self.inject_ticker_panic.swap(false, Ordering::Relaxed) {
            panic!("injected ticker panic");
        }
        let now = self.now();
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let mut expired = Vec::new();
        {
            let mut wheel = self.wheel.lock();
            wheel.advance(now, &mut expired);
            if expired.len() > self.max_expirations {
                // Overload shedding: everything past the bound goes back
                // on the wheel (a past due clamps to the cursor, so it
                // fires next sweep). One expiry storm cannot hold shard
                // locks for an unbounded stretch.
                let deferred = expired.split_off(self.max_expirations);
                self.expirations_deferred.fetch_add(deferred.len() as u64, Ordering::Relaxed);
                for e in deferred {
                    wheel.schedule(e.due, e.peer, e.gen);
                }
            }
        }
        let mut events = Vec::new();
        for entry in expired {
            let shard = self.registry.shard(entry.peer);
            let mut guard = shard.write();
            let Some(state) = guard.get_mut(&entry.peer) else {
                continue; // removed; lazily cancelled
            };
            if state.gen != entry.gen || !state.armed {
                // Stale by generation (re-add or incarnation reset), or
                // the peer has no outstanding arm — which catches even a
                // generation counter that wrapped around into a
                // coincidental match. Either way: cancelled, skip.
                continue;
            }
            self.timers_fired.fetch_add(1, Ordering::Relaxed);
            state.armed = false;
            let now = now.max(state.last_seen);
            state.last_seen = now;
            state.detector.advance(now);
            if let Some(ev) = apply_transition(state, entry.peer, now) {
                events.push(ev);
            }
            // The fired entry may have been superseded by fresher
            // heartbeats; re-arm at the detector's actual next deadline.
            if let Some(due) = state.detector.next_deadline() {
                self.wheel.lock().schedule(due, entry.peer, state.gen);
                state.armed = true;
            }
        }
        for ev in events {
            self.emit(ev);
        }
        self.maybe_snapshot(now);
    }

    fn emit(&self, event: MembershipEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|tx| match tx.try_send(event) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                self.events_dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => {
                self.subscribers_disconnected.fetch_add(1, Ordering::Relaxed);
                false
            }
        });
    }

    /// Gathers every peer's persistent state (read-locking shards one at
    /// a time — same consistency grade as `snapshot()`).
    fn collect_state(&self) -> ClusterStateSnapshot {
        let taken_at = self.now();
        let mut peers = Vec::new();
        for shard in self.registry.shards() {
            for (peer, st) in shard.read().iter() {
                peers.push(PeerRecord {
                    peer: *peer,
                    incarnation: st.incarnation,
                    eta: st.detector.eta(),
                    alpha: st.detector.alpha(),
                    window: st.detector.window(),
                    max_seq: st.detector.max_seq_received(),
                    counters: st.counters,
                    samples: st.detector.estimator_samples(),
                    qos: Some(st.qos.state()),
                    control: st.control.as_ref().map(|c| ControlRecord {
                        t_d_upper: c.requirements.detection_time_upper(),
                        t_mr_lower: c.requirements.mistake_recurrence_lower(),
                        t_m_upper: c.requirements.mistake_duration_upper(),
                        degraded: c.qos_state == QosState::Degraded,
                        reconfigurations: c.reconfigurations,
                        degradations: c.degradations,
                        promotions: c.promotions,
                        feasible_streak: c.feasible_streak,
                        last_change: c.gate.last_change(),
                        recommended_eta: c.recommended_eta,
                        loss_highest: c.long_loss.highest_seq(),
                        loss_received: c.long_loss.received_count(),
                    }),
                });
            }
        }
        peers.sort_by_key(|r| r.peer);
        ClusterStateSnapshot { taken_at, origin: self.origin, peers }
    }

    fn save_snapshot_if_configured(&self) -> bool {
        let Some(path) = &self.snapshot_path else {
            return false;
        };
        let snap = self.collect_state();
        match snapshot::write_snapshot_file(path, &snap) {
            Ok(()) => {
                self.snapshots_written.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn maybe_snapshot(&self, now: f64) {
        if self.snapshot_path.is_none() {
            return;
        }
        {
            let mut last = self.last_snapshot.lock();
            if now - *last < self.snapshot_interval {
                return;
            }
            *last = now;
        }
        self.save_snapshot_if_configured();
    }

    /// One adaptive control round (§8.1 at cluster scale), in three
    /// passes so the configurator never runs under a lock:
    ///
    /// 1. copy each participating peer's conservative estimate out under
    ///    shard *read* locks (one shard at a time);
    /// 2. run the §6.2 configurator per peer with no locks held — the
    ///    feasible-`η` search iterates thousands of grid points and must
    ///    not stall the heartbeat path;
    /// 3. re-acquire each peer's shard *write* lock and apply its
    ///    verdict; membership events are emitted after every lock is
    ///    released.
    ///
    /// Returns the number of peers whose parameters were applied.
    fn control_round(&self) -> u64 {
        if self.inject_control_panic.swap(false, Ordering::Relaxed) {
            panic!("injected control panic");
        }
        self.control_rounds.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        struct Candidate {
            peer: PeerId,
            req: QosRequirements,
            p_l: f64,
            variance: f64,
        }
        let mut candidates = Vec::new();
        for shard in self.registry.shards() {
            for (peer, st) in shard.read().iter() {
                let Some(ctl) = &st.control else { continue };
                let Some((p_l, variance)) = ctl.estimate(self.control.min_delay_samples) else {
                    continue;
                };
                candidates.push(Candidate { peer: *peer, req: ctl.requirements, p_l, variance });
            }
        }
        let mut plans = Vec::new();
        for c in candidates {
            let verdict = match configure_nfd_u(&c.req, c.p_l, c.variance) {
                Ok(Some(params)) if params.eta >= self.control.min_eta => Plan::Feasible(params),
                // Theorem 12 infeasibility (`Ok(None)`), a failed
                // feasible-η search, or an η below the operational
                // floor: fall back to best-effort parameters.
                Ok(_) | Err(ConfigError::SearchFailed) => {
                    match configure_nfd_u_best_effort(&c.req, c.p_l, c.variance) {
                        Ok(params) => Plan::Infeasible(params),
                        Err(_) => continue,
                    }
                }
                // Out-of-domain estimate (e.g. no variance yet): leave
                // the peer alone and retry next round.
                Err(_) => continue,
            };
            plans.push((c.peer, verdict));
        }
        let mut events = Vec::new();
        let mut applied = 0u64;
        for (peer, verdict) in plans {
            let shard = self.registry.shard(peer);
            let mut guard = shard.write();
            // The peer may have been removed (or swapped for a
            // control-less registration) between passes.
            let Some(state) = guard.get_mut(&peer) else { continue };
            if state.control.is_none() {
                continue;
            }
            if self.apply_plan(peer, state, now, verdict, &mut events) {
                applied += 1;
            }
        }
        for ev in events {
            self.emit(ev);
        }
        applied
    }

    /// Applies one configurator verdict to a peer, under its shard write
    /// lock. The four cases:
    ///
    /// * feasible, nominal — a routine retune, through the hysteresis
    ///   gate (deadband + dwell);
    /// * feasible, degraded — counts toward the promotion streak; at the
    ///   threshold the configured parameters are force-applied and the
    ///   peer is `Promoted`;
    /// * infeasible, nominal — graceful degradation: best-effort
    ///   parameters are force-applied (waiting out a dwell would keep
    ///   running parameters just proven wrong) and the peer is
    ///   `Degraded`;
    /// * infeasible, degraded — stays degraded; the best-effort
    ///   parameters track the network through the normal gate.
    fn apply_plan(
        &self,
        peer: PeerId,
        state: &mut PeerState,
        now: f64,
        plan: Plan,
        events: &mut Vec<MembershipEvent>,
    ) -> bool {
        let current =
            NfdUParams { eta: state.detector.eta(), alpha: state.detector.alpha() };
        let degraded =
            state.control.as_ref().is_some_and(|c| c.qos_state == QosState::Degraded);
        match plan {
            Plan::Feasible(params) if degraded => {
                let promote = {
                    let ctl = state.control.as_mut().expect("caller checked");
                    ctl.feasible_streak += 1;
                    ctl.feasible_streak >= self.control.promote_after
                };
                if !promote || !self.swap_alpha(peer, state, now, params, events) {
                    return false;
                }
                self.note_recommendation(peer, state, current.eta, params.eta);
                let ctl = state.control.as_mut().expect("caller checked");
                ctl.gate.force(now);
                ctl.qos_state = QosState::Nominal;
                ctl.feasible_streak = 0;
                ctl.promotions += 1;
                ctl.reconfigurations += 1;
                self.promotions.fetch_add(1, Ordering::Relaxed);
                self.degraded_peers.fetch_sub(1, Ordering::Relaxed);
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
                events.push(MembershipEvent { peer, at: now, change: MembershipChange::Promoted });
                true
            }
            Plan::Feasible(params) => {
                let change = HysteresisGate::param_change(current, params);
                let admitted =
                    state.control.as_mut().expect("caller checked").gate.admit(now, change);
                if !admitted || !self.swap_alpha(peer, state, now, params, events) {
                    return false;
                }
                self.note_recommendation(peer, state, current.eta, params.eta);
                state.control.as_mut().expect("caller checked").reconfigurations += 1;
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
                true
            }
            Plan::Infeasible(best) if degraded => {
                let admitted = {
                    let ctl = state.control.as_mut().expect("caller checked");
                    ctl.feasible_streak = 0;
                    ctl.gate.admit(now, HysteresisGate::param_change(current, best))
                };
                if !admitted || !self.swap_alpha(peer, state, now, best, events) {
                    return false;
                }
                self.note_recommendation(peer, state, current.eta, best.eta);
                state.control.as_mut().expect("caller checked").reconfigurations += 1;
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
                true
            }
            Plan::Infeasible(best) => {
                if !self.swap_alpha(peer, state, now, best, events) {
                    return false;
                }
                self.note_recommendation(peer, state, current.eta, best.eta);
                let ctl = state.control.as_mut().expect("caller checked");
                ctl.gate.force(now);
                ctl.qos_state = QosState::Degraded;
                ctl.feasible_streak = 0;
                ctl.degradations += 1;
                ctl.reconfigurations += 1;
                self.degradations.fetch_add(1, Ordering::Relaxed);
                self.degraded_peers.fetch_add(1, Ordering::Relaxed);
                self.reconfigurations.fetch_add(1, Ordering::Relaxed);
                events.push(MembershipEvent { peer, at: now, change: MembershipChange::Degraded });
                true
            }
        }
    }

    /// The shard-locked `α` transition point: retunes the peer's
    /// detector in place via [`NfdE::retune_alpha`] — the normalized
    /// arrival samples and sequence high-water mark carry over (they do
    /// not depend on `α`), so the expected-arrival estimate is unchanged
    /// and the freshness deadline shifts by exactly Δα. A peer trusted
    /// under the old slack stays trusted (and its timer stays armed)
    /// whenever the new deadline is still in the future. The
    /// `OnlineQos` tracker is untouched. The generation bump + disarm +
    /// re-arm replaces the peer's wheel entry atomically with the swap —
    /// the same protocol an incarnation reset uses, so no stale timer
    /// can fire against the new parameters.
    ///
    /// Any transition the new slack causes *right now* (a tighter `α`
    /// can expire a previously fresh deadline) is a genuine S/T
    /// transition and is accounted as one.
    fn swap_alpha(
        &self,
        peer: PeerId,
        state: &mut PeerState,
        now: f64,
        params: NfdUParams,
        events: &mut Vec<MembershipEvent>,
    ) -> bool {
        // The receiver's η follows the *sender* via `apply_eta`
        // confirmation, never the configurator directly — changing it
        // here would misnormalize every windowed sample.
        let at = now.max(state.last_seen);
        if state.detector.retune_alpha(params.alpha, at).is_err() {
            return false; // invalid α (e.g. η consumed the whole budget)
        }
        state.detector.advance(at);
        state.last_seen = at;
        state.gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        state.armed = false;
        if let Some(ev) = apply_transition(state, peer, at) {
            events.push(ev);
        }
        if let Some(due) = state.detector.next_deadline() {
            self.wheel.lock().schedule(due, peer, state.gen);
            state.armed = true;
        }
        true
    }

    /// Records a sender-side `η` recommendation when the configured
    /// value materially differs (beyond the deadband) from what the
    /// sender currently uses — tracked by the receiver detector's `η`,
    /// which [`ClusterMonitor::apply_eta`] keeps in sync.
    fn note_recommendation(
        &self,
        peer: PeerId,
        state: &mut PeerState,
        current_eta: f64,
        new_eta: f64,
    ) {
        if HysteresisGate::rel_change(current_eta, new_eta) <= self.control.hysteresis.deadband {
            return;
        }
        if let Some(ctl) = state.control.as_mut() {
            ctl.recommended_eta = Some(new_eta);
        }
        self.eta_recs.lock().insert(peer, new_eta);
    }
}

/// A control round's per-peer verdict.
enum Plan {
    /// The requirements are achievable: the configured `(η, α)`.
    Feasible(NfdUParams),
    /// They are not: the best-effort fallback `(η, α)`.
    Infeasible(NfdUParams),
}

/// Folds the detector's current output into the peer state, returning
/// the membership event if it transitioned.
fn apply_transition(state: &mut PeerState, peer: PeerId, at: f64) -> Option<MembershipEvent> {
    let out = state.detector.output();
    // The tracker sees every drive: unchanged output accounts elapsed
    // trust/suspect time, a change records the S- or T-transition.
    state.qos.observe(at, out);
    if out == state.last_output {
        return None;
    }
    state.last_output = out;
    let change = if out.is_trust() {
        state.counters.recoveries += 1;
        MembershipChange::Trusted
    } else {
        state.counters.suspicions += 1;
        MembershipChange::Suspected
    };
    Some(MembershipEvent { peer, at, change })
}

/// Extracts a printable reason from a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The supervised ticker: the sweep loop runs under `catch_unwind`; a
/// panic degrades health and restarts the loop with exponential backoff
/// until the restart budget is exhausted.
fn ticker(weak: Weak<Inner>, stop_rx: channel::Receiver<()>, period: Duration) {
    let mut rng = StdRng::from_os_rng();
    let mut restarts: u64 = 0;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| loop {
            match stop_rx.recv_timeout(period) {
                // Explicit stop, or every monitor handle (each holding a
                // sender clone via Inner) is gone.
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            // Upgrade per sweep: the ticker must not keep the cluster alive.
            let Some(inner) = weak.upgrade() else { return };
            inner.on_tick();
        }));
        match outcome {
            Ok(()) => {
                if let Some(inner) = weak.upgrade() {
                    *inner.ticker_health.lock() = Health::Stopped;
                }
                return;
            }
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                let Some(inner) = weak.upgrade() else { return };
                restarts += 1;
                inner.ticker_restarts.fetch_add(1, Ordering::Relaxed);
                if restarts > inner.max_ticker_restarts {
                    *inner.ticker_health.lock() = Health::Stopped;
                    return;
                }
                *inner.ticker_health.lock() = Health::Degraded { reason };
                drop(inner);
                // Jittered exponential backoff, capped, still responsive
                // to stop.
                let backoff =
                    backoff::restart_delay(&mut rng, restarts, period, Duration::from_millis(250));
                match stop_rx.recv_timeout(backoff) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        if let Some(inner) = weak.upgrade() {
                            *inner.ticker_health.lock() = Health::Stopped;
                        }
                        return;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }
}

/// The supervised control thread: one `control_round` per period, under
/// `catch_unwind`; a panic degrades `control_health` and restarts the
/// loop with jittered exponential backoff until the budget
/// ([`ControlConfig::max_restarts`]) is exhausted.
fn controller(weak: Weak<Inner>, stop_rx: channel::Receiver<()>, period: Duration) {
    let mut rng = StdRng::from_os_rng();
    let mut restarts: u64 = 0;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| loop {
            match stop_rx.recv_timeout(period) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            let Some(inner) = weak.upgrade() else { return };
            inner.control_round();
        }));
        match outcome {
            Ok(()) => {
                if let Some(inner) = weak.upgrade() {
                    *inner.control_health.lock() = Health::Stopped;
                }
                return;
            }
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                let Some(inner) = weak.upgrade() else { return };
                restarts += 1;
                inner.control_restarts.fetch_add(1, Ordering::Relaxed);
                if restarts > inner.control.max_restarts {
                    *inner.control_health.lock() = Health::Stopped;
                    return;
                }
                *inner.control_health.lock() = Health::Degraded { reason };
                drop(inner);
                let backoff =
                    backoff::restart_delay(&mut rng, restarts, period, Duration::from_millis(250));
                match stop_rx.recv_timeout(backoff) {
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        if let Some(inner) = weak.upgrade() {
                            *inner.control_health.lock() = Health::Stopped;
                        }
                        return;
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterMonitor {
        ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn")
    }

    fn drive_trusted(m: &ClusterMonitor, peer: PeerId, eta: f64, beats: u64) {
        for i in 1..=beats {
            m.record(peer, Heartbeat::new(i, i as f64 * eta));
            std::thread::sleep(Duration::from_secs_f64(eta));
        }
    }

    fn drive_trusted_incarnated(
        m: &ClusterMonitor,
        peer: PeerId,
        incarnation: u64,
        eta: f64,
        beats: u64,
    ) {
        for i in 1..=beats {
            m.record_incarnated(peer, incarnation, Heartbeat::new(i, i as f64 * eta));
            std::thread::sleep(Duration::from_secs_f64(eta));
        }
    }

    #[test]
    fn peer_lifecycle_trust_then_suspect() {
        let m = cluster();
        m.add_peer(7, PeerConfig::new(0.02, 0.05)).unwrap();
        assert!(!m.status(7).unwrap().output.is_trust(), "starts suspected");

        drive_trusted(&m, 7, 0.02, 5);
        let st = m.status(7).unwrap();
        assert!(st.output.is_trust());
        assert_eq!(st.counters.heartbeats, 5);
        assert_eq!(st.counters.recoveries, 1);

        // Stop heartbeating: the wheel must drive the suspicion without
        // any further record() call.
        std::thread::sleep(Duration::from_millis(200));
        let st = m.status(7).unwrap();
        assert!(!st.output.is_trust(), "freshness expiry must suspect");
        assert_eq!(st.counters.suspicions, 1);
        assert!(m.stats().timers_fired > 0);
        m.shutdown();
    }

    #[test]
    fn add_remove_and_errors() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.05, 0.1)).unwrap();
        assert!(matches!(
            m.add_peer(1, PeerConfig::new(0.05, 0.1)),
            Err(ClusterError::DuplicatePeer(1))
        ));
        assert!(matches!(
            m.add_peer(2, PeerConfig::new(-1.0, 0.1)),
            Err(ClusterError::Params(_))
        ));
        assert_eq!(m.peer_count(), 1);
        assert!(m.remove_peer(1));
        assert!(!m.remove_peer(1));
        assert_eq!(m.peer_count(), 0);
        assert!(!m.record(1, Heartbeat::new(1, 0.0)), "unknown peer rejected");
        assert_eq!(m.stats().unknown_heartbeats, 1);
        m.shutdown();
    }

    #[test]
    fn readd_after_remove_gets_fresh_state() {
        let m = cluster();
        m.add_peer(3, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 3, 0.02, 4);
        assert!(m.status(3).unwrap().output.is_trust());
        m.remove_peer(3);
        m.add_peer(3, PeerConfig::new(0.02, 0.05)).unwrap();
        let st = m.status(3).unwrap();
        assert!(!st.output.is_trust(), "re-added peer starts suspected");
        assert_eq!(st.counters.heartbeats, 0, "counters reset on re-add");
        // Stale wheel entries from the first registration must not
        // corrupt the new one: wait past the old deadline.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(m.status(3).unwrap().counters.suspicions, 0);
        m.shutdown();
    }

    #[test]
    fn remove_cancels_timer_and_drops_counters_no_ghost_events() {
        let m = cluster();
        let rx = m.subscribe();
        m.add_peer(11, PeerConfig::new(0.02, 0.04)).unwrap();
        drive_trusted(&m, 11, 0.02, 4);
        assert!(m.status(11).unwrap().output.is_trust());
        // Remove while a freshness timer is pending, then re-add under a
        // new incarnation. The old timer must die by generation
        // mismatch: no DOWN (Suspected) event may fire against the new
        // registration from the previous epoch's deadline.
        m.remove_peer(11);
        m.add_peer(11, PeerConfig::new(0.02, 0.04)).unwrap();
        let st = m.status(11).unwrap();
        assert_eq!(st.counters, PeerCounters::default(), "QoS counters dropped");
        assert_eq!(st.incarnation, 0, "incarnation mark dropped with the entry");
        m.record_incarnated(11, 5, Heartbeat::new(1, m.now()));
        std::thread::sleep(Duration::from_millis(30)); // past the OLD deadline only
        let mut changes = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            changes.push(ev.change);
        }
        let removed_at = changes
            .iter()
            .position(|c| *c == MembershipChange::Removed)
            .expect("Removed event emitted");
        assert!(
            !changes[removed_at..].contains(&MembershipChange::Suspected),
            "ghost Suspected from the removed registration's timer: {changes:?}"
        );
        assert_eq!(changes.last(), Some(&MembershipChange::Trusted));
        m.shutdown();
    }

    #[test]
    fn stale_incarnation_heartbeats_are_rejected() {
        let m = cluster();
        m.add_peer(4, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted_incarnated(&m, 4, 1, 0.02, 5);
        assert!(m.status(4).unwrap().output.is_trust());
        let before = m.status(4).unwrap().counters;

        // A datagram from the peer's previous life (incarnation 0),
        // delayed in flight across its crash: must not be recorded.
        assert!(!m.record_incarnated(4, 0, Heartbeat::new(99, m.now())));
        let st = m.status(4).unwrap();
        assert_eq!(st.counters.stale_incarnation, 1);
        assert_eq!(st.counters.heartbeats, before.heartbeats, "not counted as received");
        assert_eq!(m.stats().stale_incarnation_rejects, 1);
        assert_eq!(st.incarnation, 1, "high-water mark unchanged");

        // And crucially: a stream of ONLY stale-incarnation heartbeats
        // must not keep the peer trusted once the fresh stream stops.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.status(4).unwrap().output.is_trust() && std::time::Instant::now() < deadline {
            m.record_incarnated(4, 0, Heartbeat::new(100, m.now()));
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            !m.status(4).unwrap().output.is_trust(),
            "previous-life heartbeats refreshed trust"
        );
        m.shutdown();
    }

    #[test]
    fn newer_incarnation_resets_detector_state() {
        let m = cluster();
        m.add_peer(6, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted_incarnated(&m, 6, 0, 0.02, 6);
        let st = m.status(6).unwrap();
        assert!(st.output.is_trust());
        assert!(st.estimator_samples > 0);

        // The peer restarts: incarnation 1, sequence numbers back at 1.
        // Without the reset, seq 1 ≤ max_seq 6 would be discarded as
        // stale and the new life would never refresh freshness.
        assert!(m.record_incarnated(6, 1, Heartbeat::new(1, m.now())));
        let st = m.status(6).unwrap();
        assert_eq!(st.incarnation, 1);
        assert_eq!(st.counters.incarnation_resets, 1);
        assert_eq!(m.stats().incarnation_resets, 1);
        assert_eq!(
            st.counters.stale, 0,
            "the new life's seq 1 must not be counted stale against the old life's seq 6"
        );
        assert_eq!(st.estimator_samples, 1, "estimator window restarted");
        assert!(st.output.is_trust(), "fresh heartbeat re-trusts immediately");

        // The reset re-armed the freshness timer for the new life: if
        // the new incarnation goes silent it must still be suspected.
        std::thread::sleep(Duration::from_millis(200));
        assert!(!m.status(6).unwrap().output.is_trust());
        m.shutdown();
    }

    #[test]
    fn generation_wraparound_keeps_lifecycle_sound() {
        // Start the generation counter two below wraparound, then churn
        // a peer through enough add/remove cycles to cross it. Stale
        // wheel entries from pre-wrap registrations must not fire into
        // post-wrap ones (gen mismatch + disarm guard), and the normal
        // lifecycle invariants must hold on both sides of the wrap.
        let m = ClusterMonitor::spawn(ClusterConfig {
            gen_origin: u64::MAX - 2,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        for cycle in 0..6 {
            m.add_peer(9, PeerConfig::new(0.01, 0.02)).unwrap();
            m.record(9, Heartbeat::new(1, m.now()));
            assert!(
                m.status(9).unwrap().output.is_trust(),
                "cycle {cycle}: first heartbeat trusts"
            );
            m.remove_peer(9); // leaves an armed wheel entry to go stale
        }
        m.add_peer(9, PeerConfig::new(0.01, 0.02)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let st = m.status(9).unwrap();
        assert_eq!(
            st.counters.suspicions, 0,
            "stale pre-wrap timers fired into the fresh registration"
        );
        assert!(!st.output.is_trust(), "fresh registration starts suspected");
        m.shutdown();
    }

    #[test]
    fn snapshot_restore_resumes_warm() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-snap-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = ClusterConfig {
            snapshot_path: Some(path.clone()),
            snapshot_interval: 1000.0, // only the shutdown write
            ..ClusterConfig::default()
        };

        let m = ClusterMonitor::spawn(cfg.clone()).expect("spawn");
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        m.add_peer(2, PeerConfig::new(0.05, 0.1)).unwrap();
        drive_trusted_incarnated(&m, 1, 3, 0.02, 6);
        let before = m.status(1).unwrap();
        let t_before = m.now();
        m.shutdown(); // writes the final snapshot

        // "Restart the process": a new monitor on the same path.
        let m2 = ClusterMonitor::spawn(cfg).expect("respawn");
        let stats = m2.stats();
        assert_eq!(stats.peers_restored, 2);
        assert_eq!(stats.peers, 2);
        let st = m2.status(1).unwrap();
        assert!(!st.output.is_trust(), "restored peers start suspected (fail-safe)");
        assert_eq!(st.incarnation, 3, "incarnation high-water mark survives");
        assert_eq!(st.counters, before.counters, "QoS counters survive");
        assert!(st.estimator_samples > 0, "estimates are warm, not cold");
        assert!((st.eta - 0.02).abs() < 1e-12 && (st.alpha - 0.05).abs() < 1e-12);
        assert!(
            m2.now() >= t_before - 1e-3,
            "cluster time continues from the snapshot, not from 0"
        );

        // One fresh heartbeat from the same incarnation re-trusts the
        // peer against the warm window (seq continues past the restored
        // max_seq).
        assert!(m2.record_incarnated(1, 3, Heartbeat::new(before.counters.heartbeats + 1, m2.now())));
        assert!(m2.status(1).unwrap().output.is_trust());
        // ... and a previous-life datagram still bounces off the
        // restored incarnation mark.
        assert!(!m2.record_incarnated(1, 2, Heartbeat::new(999, m2.now())));
        m2.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_snapshot_starts_cold_not_dead() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-corrupt-{}.bin",
            std::process::id()
        ));
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        let m = ClusterMonitor::spawn(ClusterConfig {
            snapshot_path: Some(path.clone()),
            ..ClusterConfig::default()
        })
        .expect("spawn survives corruption");
        let stats = m.stats();
        assert_eq!(stats.peers_restored, 0);
        assert_eq!(stats.snapshot_errors, 1);
        // Still a fully functional monitor.
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        m.record(1, Heartbeat::new(1, m.now()));
        assert!(m.status(1).unwrap().output.is_trust());
        m.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn periodic_snapshots_are_written_by_the_ticker() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-periodic-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let m = ClusterMonitor::spawn(ClusterConfig {
            snapshot_path: Some(path.clone()),
            snapshot_interval: 0.02,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().snapshots_written < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(m.stats().snapshots_written >= 2, "ticker writes periodically");
        assert!(path.exists());
        m.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ticker_panic_degrades_health_and_recovers() {
        let m = cluster();
        assert_eq!(m.ticker_health(), Health::Healthy);
        m.inject_ticker_panic();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().ticker_restarts == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.stats().ticker_restarts, 1);
        match m.ticker_health() {
            Health::Degraded { reason } => assert!(reason.contains("injected")),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The restarted ticker still drives detection end to end.
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 1, 0.02, 4);
        assert!(m.status(1).unwrap().output.is_trust());
        std::thread::sleep(Duration::from_millis(200));
        assert!(!m.status(1).unwrap().output.is_trust(), "suspicion still driven");
        assert!(m.ticker_health().is_running());
        m.shutdown();
        assert_eq!(m.ticker_health(), Health::Stopped);
    }

    #[test]
    fn ticker_restart_budget_exhaustion_stops() {
        let m = ClusterMonitor::spawn(ClusterConfig {
            max_ticker_restarts: 1,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        // First panic: restart 1 (within budget). Second: budget blown.
        for _ in 0..2 {
            m.inject_ticker_panic();
            let target = m.stats().ticker_restarts + 1;
            while m.stats().ticker_restarts < target && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.ticker_health().is_running() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.ticker_health(), Health::Stopped);
        assert_eq!(m.stats().ticker_restarts, 2);
        m.shutdown();
    }

    #[test]
    fn expiry_storms_are_bounded_per_sweep() {
        let m = ClusterMonitor::spawn(ClusterConfig {
            max_expirations_per_sweep: 4,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        // 32 peers all go silent together: their freshness points expire
        // in a burst far wider than the per-sweep bound.
        for p in 0..32u64 {
            m.add_peer(p, PeerConfig::new(0.01, 0.02)).unwrap();
            m.record(p, Heartbeat::new(1, m.now()));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(3);
        while std::time::Instant::now() < deadline {
            let snap = m.snapshot();
            if snap.suspected().len() == 32 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(m.snapshot().suspected().len(), 32, "every peer still gets suspected");
        assert!(
            m.stats().expirations_deferred > 0,
            "the burst must have been spread over multiple sweeps"
        );
        m.shutdown();
    }

    #[test]
    fn snapshot_splits_trusted_and_suspected() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        m.add_peer(2, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 1, 0.02, 5);
        let snap = m.snapshot();
        assert_eq!(snap.trusted(), vec![1]);
        assert_eq!(snap.suspected(), vec![2]);
        assert_eq!(snap.len(), 2);
        assert!(snap.taken_at() > 0.0);
        assert_eq!(snap.output(9), None);
        assert!(snap.is_trusted(&1) && !snap.is_trusted(&2) && !snap.is_trusted(&9));
        m.shutdown();
    }

    #[test]
    fn membership_events_in_order() {
        let m = cluster();
        let rx = m.subscribe();
        m.add_peer(5, PeerConfig::new(0.02, 0.04)).unwrap();
        drive_trusted(&m, 5, 0.02, 4);
        std::thread::sleep(Duration::from_millis(150)); // let it expire
        m.remove_peer(5);
        m.shutdown();

        let mut changes = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            if ev.peer == 5 {
                changes.push(ev.change);
            }
        }
        assert_eq!(
            changes,
            vec![
                MembershipChange::Added,
                MembershipChange::Trusted,
                MembershipChange::Suspected,
                MembershipChange::Removed,
            ]
        );
    }

    #[test]
    fn slow_subscribers_lose_events_but_never_block() {
        let m = ClusterMonitor::spawn(ClusterConfig {
            event_capacity: 1,
            ..ClusterConfig::default()
        })
        .expect("spawn");
        let _rx = m.subscribe();
        for p in 0..8 {
            m.add_peer(p, PeerConfig::new(0.05, 0.1)).unwrap();
        }
        // Capacity 1: the first Added fits, the rest are dropped.
        assert_eq!(m.stats().events_dropped, 7);
        m.shutdown();
    }

    #[test]
    fn dropping_all_handles_stops_the_ticker() {
        let m = cluster();
        m.add_peer(1, PeerConfig::new(0.05, 0.1)).unwrap();
        drop(m);
        // Nothing to assert directly (the thread is detached); this test
        // exists so leak/deadlock detectors see the path exercised.
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn live_qos_tracks_interval_metrics() {
        let m = cluster();
        m.add_peer(7, PeerConfig::new(0.02, 0.05)).unwrap();
        let q0 = m.qos(7).expect("registered peer has qos");
        assert_eq!(q0.s_transitions, 0);
        assert!(q0.query_accuracy() < 1.0, "starts suspected, no trust time yet");

        // Trust (T-transition), go silent (S-transition), trust again.
        // The recovery heartbeat jumps the sequence ahead so its
        // freshness point lands in the future despite the silent gap.
        drive_trusted(&m, 7, 0.02, 5);
        std::thread::sleep(Duration::from_millis(200));
        assert!(!m.status(7).unwrap().output.is_trust());
        m.record(7, Heartbeat::new(40, m.now()));
        assert!(m.status(7).unwrap().output.is_trust());

        let q = m.qos(7).expect("qos");
        assert_eq!(q.s_transitions, 1, "one suspicion observed");
        assert_eq!(q.t_transitions, 2, "initial trust plus the recovery");
        assert_eq!(q.duration.count(), 1, "the mistake was corrected");
        let tm = q.mean_mistake_duration().expect("one complete T_M");
        assert!(tm > 0.0 && tm < 5.0, "plausible mistake duration, got {tm}");
        let pa = q.query_accuracy();
        assert!(pa > 0.0 && pa < 1.0, "mixed trust/suspect window, got {pa}");
        assert!(q.trust_time > 0.0 && q.suspect_time > 0.0);
        // The counters and the tracker agree on transition counts.
        let st = m.status(7).unwrap();
        assert_eq!(st.counters.suspicions, q.s_transitions);
        assert_eq!(st.counters.recoveries, q.t_transitions);
        assert!(m.qos(99).is_none(), "unregistered peer has no qos");

        // qos_snapshot returns the same peer, sorted.
        let all = m.qos_snapshot();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].peer, 7);
        assert_eq!(all[0].qos.s_transitions, 1);
        m.shutdown();
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_counted() {
        let m = cluster();
        let rx = m.subscribe();
        let _live = m.subscribe();
        m.add_peer(1, PeerConfig::new(0.05, 0.1)).unwrap();
        drop(rx);
        // The next emit prunes the dropped subscriber.
        m.add_peer(2, PeerConfig::new(0.05, 0.1)).unwrap();
        let stats = m.stats();
        assert_eq!(stats.subscribers_disconnected, 1);
        assert_eq!(stats.events_dropped, 0, "disconnect is not an event drop");
        m.shutdown();
    }

    #[test]
    fn qos_state_survives_snapshot_restore() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-qos-snap-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = ClusterConfig {
            snapshot_path: Some(path.clone()),
            snapshot_interval: 1000.0,
            ..ClusterConfig::default()
        };

        let m = ClusterMonitor::spawn(cfg.clone()).expect("spawn");
        m.add_peer(1, PeerConfig::new(0.02, 0.05)).unwrap();
        drive_trusted(&m, 1, 0.02, 5);
        std::thread::sleep(Duration::from_millis(200)); // S-transition
        m.record(1, Heartbeat::new(40, m.now())); // T-transition (seq jump, see above)
        let before = m.qos(1).unwrap();
        assert_eq!(before.s_transitions, 1);
        assert_eq!(before.duration.count(), 1);
        m.shutdown();

        let m2 = ClusterMonitor::spawn(cfg).expect("respawn");
        let after = m2.qos(1).expect("restored peer has qos");
        // Interval statistics carried across the restart; the forced
        // fail-safe Suspect restore adds one more S-transition (and with
        // it a second completed recurrence-free mistake still open).
        assert_eq!(after.s_transitions, 2, "history plus the fail-safe suspect");
        assert_eq!(after.duration.count(), before.duration.count());
        assert!(
            (after.mean_mistake_duration().unwrap() - before.mean_mistake_duration().unwrap())
                .abs()
                < 1e-9
        );
        assert!(after.trust_time >= before.trust_time - 1e-9);
        assert!(after.window >= before.window - 1e-3, "observation window continues");
        m2.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cold_start_from_v1_snapshot_still_works() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-v1-snap-{}.bin",
            std::process::id()
        ));
        // Hand-write a version-1 snapshot (pre-qos layout).
        let snap = crate::snapshot::ClusterStateSnapshot {
            taken_at: 5.0,
            origin: None,
            peers: vec![crate::snapshot::PeerRecord {
                peer: 3,
                incarnation: 2,
                eta: 0.02,
                alpha: 0.05,
                window: 32,
                max_seq: Some(9),
                counters: PeerCounters { heartbeats: 9, ..PeerCounters::default() },
                samples: vec![0.0, 0.001],
                qos: None,
                control: None,
            }],
        };
        std::fs::write(&path, crate::snapshot::encode_snapshot_v1(&snap)).unwrap();

        let m = ClusterMonitor::spawn(ClusterConfig {
            snapshot_path: Some(path.clone()),
            snapshot_interval: 1000.0,
            ..ClusterConfig::default()
        })
        .expect("spawn from v1 snapshot");
        let stats = m.stats();
        assert_eq!(stats.peers_restored, 1);
        assert_eq!(stats.snapshot_errors, 0, "v1 is legacy, not corrupt");
        let st = m.status(3).unwrap();
        assert_eq!(st.incarnation, 2);
        assert_eq!(st.counters.heartbeats, 9);
        // The qos tracker starts a fresh window (no v1 state to resume).
        let q = m.qos(3).unwrap();
        assert_eq!(q.s_transitions, 0);
        assert_eq!(q.recurrence.count(), 0);
        // The restored peer still functions — a new incarnation resets
        // the stale estimator and re-trusts — and the next snapshot write
        // upgrades the file to the current version with qos state.
        assert!(m.record_incarnated(3, 3, Heartbeat::new(1, m.now())));
        assert!(m.status(3).unwrap().output.is_trust());
        assert!(m.save_snapshot());
        let upgraded = crate::snapshot::read_snapshot_file(&path).unwrap().unwrap();
        assert!(upgraded.peers[0].qos.is_some(), "rewritten at current version");
        m.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn elector_runs_over_cluster_snapshot() {
        use fd_runtime::{LeaderElector, Leadership};
        let m = cluster();
        for p in [1u64, 2, 3] {
            m.add_peer(p, PeerConfig::new(0.02, 0.05)).unwrap();
        }
        let elector = LeaderElector::new(vec![1u64, 2, 3]);
        assert_eq!(elector.current(&m.snapshot()), Leadership::NoLeader);
        drive_trusted(&m, 2, 0.02, 5);
        assert_eq!(elector.current(&m.snapshot()), Leadership::Leader(2));
        m.shutdown();
    }

    /// A monitor whose background control thread stays out of the way
    /// (period sanitized to 600 s) so tests can step the control plane
    /// deterministically via `run_control_round`.
    fn adaptive_cluster() -> ClusterMonitor {
        ClusterMonitor::spawn(ClusterConfig {
            control: ControlConfig {
                period: 600.0,
                short_delay_window: 8,
                long_delay_window: 24,
                min_delay_samples: 4,
                min_eta: 0.5,
                hysteresis: HysteresisConfig { min_dwell: 0.0, deadband: 0.01 },
                promote_after: 2,
                ..ControlConfig::default()
            },
            ..ClusterConfig::default()
        })
        .expect("spawn")
    }

    #[test]
    fn control_round_degrades_and_promotes_with_exact_events() {
        let m = adaptive_cluster();
        let rx = m.subscribe();
        let req = QosRequirements::new(4.0, 1e9, 2.0).unwrap();
        m.add_peer(1, PeerConfig::new(1.0, 3.0).requirements(req)).unwrap();

        // Heartbeats every 1 s of simulated time; `delay` is the link
        // delay stamped into the receipt time.
        let mut seq = 0u64;
        let mut beat = |delay: f64| {
            seq += 1;
            m.record_at(1, seq as f64 + delay, Heartbeat::new(seq, seq as f64));
        };

        // Clean regime: constant delay ⇒ V̂ ≈ 0, p̂_L = 0. Feasible, and
        // materially different from the registration parameters, so the
        // first round retunes (η_rec = 2, α = 2 for this requirement
        // tuple) within ONE control round of the estimate maturing.
        for _ in 0..8 {
            beat(0.05);
        }
        assert_eq!(m.run_control_round(), 1, "clean regime applies a feasible retune");
        let st = m.status(1).unwrap();
        assert_eq!(st.qos_state, QosState::Nominal);
        assert!((st.alpha - 2.0).abs() < 0.1, "α retuned toward 2.0, got {}", st.alpha);
        assert!((st.eta - 1.0).abs() < 1e-12, "receiver η follows the sender, not the plan");
        let recs = m.drain_eta_recommendations();
        assert_eq!(recs.len(), 1);
        assert!((recs[0].1 - 2.0).abs() < 0.1, "η recommendation ≈ 2.0, got {}", recs[0].1);

        // Regime shift: every heartbeat now takes 4 s. The long delay
        // window (24) still remembers the clean samples, so the §8.1.2
        // conservative pair sees a huge variance; the feasible η falls
        // below the 0.5 s floor ⇒ graceful degradation to best-effort
        // parameters in ONE round.
        for _ in 0..16 {
            beat(4.0);
        }
        let before = m.status(1).unwrap();
        assert_eq!(m.run_control_round(), 1, "spike regime force-applies best effort");
        let st = m.status(1).unwrap();
        assert_eq!(st.qos_state, QosState::Degraded);
        assert_eq!(
            st.counters.heartbeats, before.counters.heartbeats,
            "degradation must not touch the heartbeat ledger"
        );
        assert!(st.estimator_samples > 0, "warm α swap keeps the arrival window");
        assert_eq!(m.stats().degraded_peers, 1);
        assert_eq!(m.stats().degradations, 1);

        // Recovery: enough clean beats to flush the spike out of both
        // delay windows. The first feasible round only counts toward the
        // promotion streak; the second (promote_after = 2) promotes.
        for _ in 0..30 {
            beat(0.05);
        }
        assert_eq!(m.run_control_round(), 0, "first feasible round only builds the streak");
        assert_eq!(m.status(1).unwrap().qos_state, QosState::Degraded);
        assert_eq!(m.run_control_round(), 1, "second feasible round promotes");
        let st = m.status(1).unwrap();
        assert_eq!(st.qos_state, QosState::Nominal);
        assert!((st.alpha - 2.0).abs() < 0.1, "promoted back to configured α");
        assert_eq!(st.counters.heartbeats, 54, "8 + 16 + 30 beats all accounted");

        let stats = m.stats();
        assert_eq!(stats.degradations, 1);
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.degraded_peers, 0);
        assert_eq!(stats.control_rounds, 4);
        assert_eq!(stats.reconfigurations, 3, "retune + degradation + promotion");

        // Exactly one Degraded and one Promoted event, in that order —
        // no flapping despite four control rounds.
        let mut control_events = Vec::new();
        while let Ok(ev) = rx.try_recv() {
            if matches!(ev.change, MembershipChange::Degraded | MembershipChange::Promoted) {
                control_events.push(ev.change);
            }
        }
        assert_eq!(
            control_events,
            vec![MembershipChange::Degraded, MembershipChange::Promoted]
        );
        m.shutdown();
    }

    #[test]
    fn apply_eta_confirms_recommendation_and_restarts_cold() {
        let m = adaptive_cluster();
        let req = QosRequirements::new(4.0, 1e9, 2.0).unwrap();
        m.add_peer(1, PeerConfig::new(1.0, 3.0).requirements(req)).unwrap();
        for seq in 1..=8u64 {
            m.record_at(1, seq as f64 + 0.05, Heartbeat::new(seq, seq as f64));
        }
        assert_eq!(m.run_control_round(), 1);
        let rec = m.status(1).unwrap().recommended_eta.expect("η recommended");
        let samples_before = m.status(1).unwrap().estimator_samples;
        assert!(samples_before > 1);

        // Confirming the sender-side change rebuilds the detector cold —
        // the normalized samples embed the old η — and clears the
        // pending recommendation.
        assert!(m.apply_eta(1, rec));
        let st = m.status(1).unwrap();
        assert!((st.eta - rec).abs() < 1e-12);
        assert_eq!(st.estimator_samples, 0, "η change invalidates the window");
        assert_eq!(st.recommended_eta, None, "confirmation clears the pending η");
        assert_eq!(st.counters.heartbeats, 8, "ledger survives the rebuild");

        // Unknown peers and garbage values are rejected.
        assert!(!m.apply_eta(99, 1.0));
        assert!(!m.apply_eta(1, 0.0));
        assert!(!m.apply_alpha(99, 1.0));
        assert!(!m.apply_alpha(1, f64::NAN));
        m.shutdown();
    }

    #[test]
    fn control_panic_degrades_health_and_recovers() {
        // A short period so the supervised control thread actually runs.
        let m = ClusterMonitor::spawn(ClusterConfig {
            control: ControlConfig { period: 0.01, ..ControlConfig::default() },
            ..ClusterConfig::default()
        })
        .expect("spawn");
        assert_eq!(m.control_health(), Health::Healthy);
        m.inject_control_panic();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().control_restarts == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(m.stats().control_restarts, 1);
        match m.control_health() {
            Health::Degraded { reason } => assert!(reason.contains("injected")),
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The restarted control thread keeps counting rounds.
        let rounds = m.stats().control_rounds;
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while m.stats().control_rounds <= rounds && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(m.stats().control_rounds > rounds, "control rounds resume after restart");
        m.shutdown();
        assert_eq!(m.control_health(), Health::Stopped);
    }

    #[test]
    fn control_state_survives_snapshot_restore() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-monitor-ctl-snap-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = ClusterConfig {
            snapshot_path: Some(path.clone()),
            snapshot_interval: 1000.0,
            control: ControlConfig {
                period: 600.0,
                short_delay_window: 8,
                long_delay_window: 24,
                min_delay_samples: 4,
                min_eta: 0.5,
                hysteresis: HysteresisConfig { min_dwell: 0.0, deadband: 0.01 },
                promote_after: 2,
                ..ControlConfig::default()
            },
            ..ClusterConfig::default()
        };
        let m = ClusterMonitor::spawn(cfg.clone()).expect("spawn");
        let req = QosRequirements::new(4.0, 1e9, 2.0).unwrap();
        m.add_peer(1, PeerConfig::new(1.0, 3.0).requirements(req)).unwrap();
        let mut seq = 0u64;
        for _ in 0..8 {
            seq += 1;
            m.record_at(1, seq as f64 + 0.05, Heartbeat::new(seq, seq as f64));
        }
        for _ in 0..16 {
            seq += 1;
            m.record_at(1, seq as f64 + 4.0, Heartbeat::new(seq, seq as f64));
        }
        assert_eq!(m.run_control_round(), 1, "spike regime degrades");
        let before = m.status(1).unwrap();
        assert_eq!(before.qos_state, QosState::Degraded);
        m.shutdown(); // writes the v3 snapshot

        let m2 = ClusterMonitor::spawn(cfg).expect("respawn");
        let st = m2.status(1).unwrap();
        assert_eq!(st.qos_state, QosState::Degraded, "degradation survives restart");
        assert_eq!(st.recommended_eta, before.recommended_eta);
        assert_eq!(m2.stats().degraded_peers, 1);
        m2.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// Applying a new `α` mid-run — any valid slack, any history
            /// length — must never fabricate a spurious S-transition or
            /// reset the observed-QoS tracker: the arrival window is
            /// warm, the deadline just shifts by Δα, and a freshly-fed
            /// peer stays trusted.
            #[test]
            fn alpha_swap_never_fabricates_transitions(
                alpha in 0.05f64..40.0,
                beats in 3u64..20,
            ) {
                let m = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
                m.add_peer(1, PeerConfig::new(1.0, 0.5)).unwrap();
                for s in 1..=beats {
                    m.record_at(1, s as f64 + 0.01, Heartbeat::new(s, s as f64));
                }
                let before = m.status(1).unwrap();
                prop_assert!(before.output.is_trust());
                let q_before = m.qos(1).unwrap();

                prop_assert!(m.apply_alpha(1, alpha));

                let after = m.status(1).unwrap();
                prop_assert!(after.output.is_trust(), "spurious suspicion from α swap");
                prop_assert_eq!(after.counters.suspicions, before.counters.suspicions);
                prop_assert_eq!(after.counters.recoveries, before.counters.recoveries);
                prop_assert_eq!(after.counters.heartbeats, before.counters.heartbeats);
                prop_assert_eq!(after.estimator_samples, before.estimator_samples,
                    "warm swap must keep the arrival window");
                prop_assert!((after.alpha - alpha).abs() < 1e-12);
                prop_assert!((after.eta - before.eta).abs() < 1e-12);

                let q_after = m.qos(1).unwrap();
                prop_assert_eq!(q_after.s_transitions, q_before.s_transitions,
                    "ObservedQos transition history reset by α swap");
                prop_assert_eq!(q_after.t_transitions, q_before.t_transitions);
                prop_assert_eq!(q_after.duration.count(), q_before.duration.count());

                // The next heartbeat continues the same stream.
                let s = beats + 1;
                prop_assert!(m.record_at(1, s as f64 + 0.01, Heartbeat::new(s, s as f64)));
                prop_assert!(m.status(1).unwrap().output.is_trust());
                m.shutdown();
            }
        }
    }
}
