//! Membership-event capture and structural validation.
//!
//! The cluster monitor publishes [`MembershipEvent`]s over a channel
//! ([`ClusterMonitor::subscribe`](crate::ClusterMonitor::subscribe));
//! subscribers see them in emission order per peer. An [`EventLog`]
//! drains such a channel into an inspectable buffer and answers the
//! structural questions the statistical model-checking oracles (crate
//! `fd-smc`) ask of a run:
//!
//! * **No ghost events**: once a peer is `Removed`, no further event for
//!   it may appear — a stale timer or a late heartbeat resurrecting a
//!   deregistered peer is a lifecycle bug, whatever its timing.
//! * **Degrade/promote discipline**: per peer, `Degraded` and `Promoted`
//!   must strictly alternate starting with `Degraded` — a promotion
//!   without a preceding degradation (or a double degradation) means the
//!   control plane lost track of the peer's mode.
//!
//! Both checks are deliberately *order-insensitive across peers* and
//! make no assumption about event timing, so they hold regardless of
//! whether the monitor is driven deterministically
//! ([`record_at`](crate::ClusterMonitor::record_at) +
//! [`run_control_round`](crate::ClusterMonitor::run_control_round)) or
//! by the wall-clock background ticker.

use crate::monitor::{MembershipChange, MembershipEvent};
use crate::PeerId;
use crossbeam::channel::Receiver;

/// A drained, inspectable buffer of membership events.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<MembershipEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a log from already-collected events.
    pub fn from_events(events: Vec<MembershipEvent>) -> Self {
        Self { events }
    }

    /// Appends one event.
    pub fn push(&mut self, event: MembershipEvent) {
        self.events.push(event);
    }

    /// Drains every event currently buffered in `rx` (non-blocking) and
    /// appends them; returns how many were taken.
    pub fn drain(&mut self, rx: &Receiver<MembershipEvent>) -> usize {
        let mut n = 0;
        while let Ok(ev) = rx.try_recv() {
            self.events.push(ev);
            n += 1;
        }
        n
    }

    /// All captured events, in capture order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// The events concerning one peer, in capture order.
    pub fn for_peer(&self, peer: PeerId) -> Vec<&MembershipEvent> {
        self.events.iter().filter(|e| e.peer == peer).collect()
    }

    /// The first event for `peer` with the given change, if any — the
    /// natural query for takeover bounds ("when was the peer first
    /// re-trusted on the adopting node?").
    pub fn first(&self, peer: PeerId, change: MembershipChange) -> Option<&MembershipEvent> {
        self.events.iter().find(|e| e.peer == peer && e.change == change)
    }

    /// Events for `peer` observed *after* its first `Removed` event.
    /// A non-empty result is the "ghost event" lifecycle violation.
    pub fn ghost_events_after_remove(&self, peer: PeerId) -> Vec<&MembershipEvent> {
        let mut removed = false;
        let mut ghosts = Vec::new();
        for e in self.events.iter().filter(|e| e.peer == peer) {
            if removed {
                ghosts.push(e);
            } else if e.change == MembershipChange::Removed {
                removed = true;
            }
        }
        ghosts
    }

    /// Checks the degrade/promote discipline for `peer`: projected onto
    /// `{Degraded, Promoted}`, the event stream must alternate starting
    /// with `Degraded`. Returns `Err` with the offending event on the
    /// first violation.
    pub fn validate_degrade_promote(&self, peer: PeerId) -> Result<(), &MembershipEvent> {
        let mut degraded = false;
        for e in self.events.iter().filter(|e| e.peer == peer) {
            match e.change {
                MembershipChange::Degraded => {
                    if degraded {
                        return Err(e);
                    }
                    degraded = true;
                }
                MembershipChange::Promoted => {
                    if !degraded {
                        return Err(e);
                    }
                    degraded = false;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Every peer that appears in the log, deduplicated, in first-seen
    /// order.
    pub fn peers(&self) -> Vec<PeerId> {
        let mut seen = Vec::new();
        for e in &self.events {
            if !seen.contains(&e.peer) {
                seen.push(e.peer);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(peer: PeerId, at: f64, change: MembershipChange) -> MembershipEvent {
        MembershipEvent { peer, at, change }
    }

    #[test]
    fn drain_collects_everything_buffered() {
        let (tx, rx) = crossbeam::channel::unbounded();
        tx.send(ev(1, 0.0, MembershipChange::Added)).unwrap();
        tx.send(ev(2, 1.0, MembershipChange::Added)).unwrap();
        tx.send(ev(1, 2.0, MembershipChange::Trusted)).unwrap();
        let mut log = EventLog::new();
        assert_eq!(log.drain(&rx), 3);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.for_peer(1).len(), 2);
        assert_eq!(log.peers(), vec![1, 2]);
        // Draining again picks up nothing new.
        assert_eq!(log.drain(&rx), 0);
    }

    #[test]
    fn ghost_events_flagged_only_after_remove() {
        let log = EventLog::from_events(vec![
            ev(7, 0.0, MembershipChange::Added),
            ev(7, 1.0, MembershipChange::Trusted),
            ev(7, 2.0, MembershipChange::Removed),
            ev(8, 2.5, MembershipChange::Added), // other peer: fine
            ev(7, 3.0, MembershipChange::Suspected), // ghost!
        ]);
        let ghosts = log.ghost_events_after_remove(7);
        assert_eq!(ghosts.len(), 1);
        assert_eq!(ghosts[0].change, MembershipChange::Suspected);
        assert!(log.ghost_events_after_remove(8).is_empty());
    }

    #[test]
    fn clean_lifecycle_has_no_ghosts() {
        let log = EventLog::from_events(vec![
            ev(1, 0.0, MembershipChange::Added),
            ev(1, 1.0, MembershipChange::Trusted),
            ev(1, 2.0, MembershipChange::Removed),
        ]);
        assert!(log.ghost_events_after_remove(1).is_empty());
    }

    #[test]
    fn degrade_promote_alternation_enforced() {
        let ok = EventLog::from_events(vec![
            ev(1, 0.0, MembershipChange::Added),
            ev(1, 1.0, MembershipChange::Degraded),
            ev(1, 2.0, MembershipChange::Promoted),
            ev(1, 3.0, MembershipChange::Degraded),
        ]);
        assert!(ok.validate_degrade_promote(1).is_ok());

        // Promotion with no preceding degradation.
        let bad = EventLog::from_events(vec![
            ev(1, 0.0, MembershipChange::Added),
            ev(1, 1.0, MembershipChange::Promoted),
        ]);
        assert_eq!(
            bad.validate_degrade_promote(1).unwrap_err().change,
            MembershipChange::Promoted
        );

        // Double degradation.
        let bad2 = EventLog::from_events(vec![
            ev(1, 1.0, MembershipChange::Degraded),
            ev(1, 2.0, MembershipChange::Degraded),
        ]);
        assert!(bad2.validate_degrade_promote(1).is_err());

        // Per-peer isolation: peer 2's degradation doesn't license
        // peer 1's promotion.
        let bad3 = EventLog::from_events(vec![
            ev(2, 0.0, MembershipChange::Degraded),
            ev(1, 1.0, MembershipChange::Promoted),
        ]);
        assert!(bad3.validate_degrade_promote(1).is_err());
        assert!(bad3.validate_degrade_promote(2).is_ok());
    }
}
