//! Versioned on-disk snapshot of a cluster monitor's per-peer state.
//!
//! A restarted monitor in the crash-recovery model faces a cold-start
//! problem: every NFD-E estimator window is empty, so the §6.3
//! expected-arrival estimates — and with them the detection-time and
//! mistake-rate QoS — take a full window of heartbeats to converge
//! again. A snapshot carries the warm state across the restart: each
//! peer's estimator samples, highest sequence seen, highest sender
//! incarnation seen, and QoS counters.
//!
//! The format is a hand-rolled little-endian binary layout (no external
//! serialization dependency) with a trailing FNV-1a checksum:
//!
//! | field | size |
//! |-------|-----:|
//! | magic `[0xFD, 0x5C]` | 2 |
//! | version `u16` (`4`; `1`–`3` still decode) | 2 |
//! | `taken_at: f64` (cluster clock, seconds) | 8 |
//! | origin block (version ≥ 4): flag `u8` + `node u64` + `incarnation u64` | 17 |
//! | peer count `u32` | 4 |
//! | peer records … | var |
//! | FNV-1a 64 checksum of everything above | 8 |
//!
//! Each peer record is: `peer u64`, `incarnation u64`, `eta f64`,
//! `alpha f64`, `window u32`, `max_seq_flag u8` + `max_seq u64`, six
//! counter `u64`s, `sample_count u32` + that many `f64` samples.
//!
//! Version 2 appends to each record an [`OnlineQos`] tracker block:
//! `qos_flag u8`, and when present `output u8` (0 = Trust, 1 = Suspect),
//! `origin f64`, `at f64`, `segment_start f64`,
//! `segment_opened_by_transition u8`, `trust_time f64`,
//! `suspect_time f64`, `last_s_flag u8` + `last_s f64`,
//! `s_transitions u64`, `t_transitions u64`, then three Welford
//! accumulators (recurrence, duration, good) as `count u64`, `mean f64`,
//! `m2 f64` each. A version-1 snapshot decodes with `qos: None`: the
//! restored peer's live metrics simply start a fresh observation window.
//!
//! Version 3 appends to each record an adaptive-control block:
//! `control_flag u8`, and when present the three requirement bounds
//! (`t_d_upper f64`, `t_mr_lower f64`, `t_m_upper f64`),
//! `degraded u8`, `reconfigurations u64`, `degradations u64`,
//! `promotions u64`, `feasible_streak u32`, `last_change_flag u8` +
//! `last_change f64`, `recommended_eta_flag u8` +
//! `recommended_eta f64`, `loss_highest u64`, `loss_received u64`. A
//! version-1 or -2 snapshot decodes with `control: None`: the restored
//! peer keeps whatever requirements its re-registration declares.
//!
//! Version 4 inserts a *provenance* block right after `taken_at`: a
//! flag byte and, when set, the [`SnapshotOrigin`] — the federation
//! node id and node incarnation that wrote the snapshot, so a surviving
//! node taking over a dead node's partition can verify whose state it
//! is warm-starting from. Version 1–3 snapshots decode with
//! `origin: None`, as do version-4 snapshots written by a standalone
//! monitor.
//!
//! Decoding is strict — wrong magic, unknown version, truncation,
//! trailing bytes, non-finite parameters or a checksum mismatch all
//! yield [`SnapshotError::Corrupt`]. Corruption is *safe* to reject
//! wholesale: a monitor restoring nothing merely starts cold (every
//! peer suspected until its heartbeats return), it never trusts anyone
//! it should not. That is the opposite polarity from the sender-side
//! incarnation store, where corruption must halt the process.
//!
//! Writes are atomic: the snapshot is written to a `.tmp` sibling and
//! renamed over the target, so a crash mid-write leaves the previous
//! snapshot intact rather than a torn file.

use crate::registry::PeerCounters;
use crate::PeerId;
use fd_metrics::online_qos::QosTrackerState;
use fd_metrics::FdOutput;
use fd_stats::OnlineStats;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic bytes opening a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 2] = [0xFD, 0x5C];

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 4;

/// Oldest version [`decode_snapshot`] still accepts.
pub const SNAPSHOT_MIN_VERSION: u16 = 1;

/// One peer's persisted state.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerRecord {
    /// The peer id.
    pub peer: PeerId,
    /// Highest sender incarnation seen from this peer.
    pub incarnation: u64,
    /// Heartbeat period `η`, seconds.
    pub eta: f64,
    /// Freshness slack `α`, seconds.
    pub alpha: f64,
    /// Estimator window capacity.
    pub window: usize,
    /// Highest heartbeat sequence received, if any.
    pub max_seq: Option<u64>,
    /// QoS counters at snapshot time.
    pub counters: PeerCounters,
    /// Normalized estimator samples, oldest first (the `A'ᵢ − η·sᵢ`
    /// terms of Eq. 6.3's sliding window).
    pub samples: Vec<f64>,
    /// Live QoS tracker state (version ≥ 2; `None` when restored from a
    /// version-1 snapshot, in which case the tracker starts fresh).
    pub qos: Option<QosTrackerState>,
    /// Adaptive-control state (version ≥ 3; `None` for earlier
    /// snapshots or peers without declared requirements).
    pub control: Option<ControlRecord>,
}

/// One peer's persisted adaptive-control state: its declared
/// requirements, where the control plane had it (nominal/degraded), the
/// hysteresis dwell clock, and the *lifetime* loss-estimator counters —
/// the parts worth carrying across a restart. Windowed estimators
/// (short-horizon loss, both delay-moment windows) deliberately restart
/// cold: they describe the network of the last few seconds, which the
/// downtime just invalidated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlRecord {
    /// Required detection-time upper bound `T_D^U`, seconds.
    pub t_d_upper: f64,
    /// Required mistake-recurrence lower bound `T_MR^L`, seconds.
    pub t_mr_lower: f64,
    /// Required mistake-duration upper bound `T_M^U`, seconds.
    pub t_m_upper: f64,
    /// Whether the peer was running best-effort (degraded) parameters.
    pub degraded: bool,
    /// Parameter applications so far.
    pub reconfigurations: u64,
    /// Nominal→Degraded transitions so far.
    pub degradations: u64,
    /// Degraded→Nominal transitions so far.
    pub promotions: u64,
    /// Consecutive feasible rounds while degraded.
    pub feasible_streak: u32,
    /// Hysteresis dwell clock: cluster-clock time of the last applied
    /// parameter change, if any.
    pub last_change: Option<f64>,
    /// Pending sender-side `η` recommendation, if any.
    pub recommended_eta: Option<f64>,
    /// Lifetime loss estimator: highest sequence seen.
    pub loss_highest: u64,
    /// Lifetime loss estimator: fresh heartbeats received.
    pub loss_received: u64,
}

/// Which federation node (and which life of it) wrote a snapshot —
/// version-4 provenance, stamped by monitors embedded in an
/// `fd-federation` node so partition takeover can tell whose warm state
/// a snapshot file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotOrigin {
    /// The federation node id.
    pub node: u64,
    /// That node's incarnation when the snapshot was written.
    pub incarnation: u64,
}

/// A decoded snapshot: when it was taken (on the cluster clock that
/// wrote it), who wrote it (version ≥ 4, federation nodes only), and
/// every peer's state.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStateSnapshot {
    /// Cluster-clock time the snapshot was taken, seconds.
    pub taken_at: f64,
    /// Provenance of the writing monitor, when it declared one
    /// ([`crate::ClusterConfig::origin`]). `None` for standalone
    /// monitors and every pre-v4 snapshot.
    pub origin: Option<SnapshotOrigin>,
    /// Per-peer records.
    pub peers: Vec<PeerRecord>,
}

/// Why a snapshot could not be read.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The bytes do not form a well-formed snapshot; the reason names
    /// the first check that failed.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes` — cheap, dependency-free integrity check
/// (detects torn writes and bit rot, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a snapshot at a given format version — the single body
/// behind [`encode_snapshot`] and the test-only legacy encoders, so the
/// per-record layout lives in one place and each version gates the
/// blocks it introduced.
fn encode_snapshot_at(snap: &ClusterStateSnapshot, version: u16) -> Vec<u8> {
    let mut buf = Vec::with_capacity(33 + snap.peers.len() * 96);
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&snap.taken_at.to_le_bytes());
    if version >= 4 {
        buf.push(snap.origin.is_some() as u8);
        let o = snap.origin.unwrap_or(SnapshotOrigin { node: 0, incarnation: 0 });
        buf.extend_from_slice(&o.node.to_le_bytes());
        buf.extend_from_slice(&o.incarnation.to_le_bytes());
    }
    buf.extend_from_slice(&(snap.peers.len() as u32).to_le_bytes());
    for r in &snap.peers {
        buf.extend_from_slice(&r.peer.to_le_bytes());
        buf.extend_from_slice(&r.incarnation.to_le_bytes());
        buf.extend_from_slice(&r.eta.to_le_bytes());
        buf.extend_from_slice(&r.alpha.to_le_bytes());
        buf.extend_from_slice(&(r.window as u32).to_le_bytes());
        buf.push(r.max_seq.is_some() as u8);
        buf.extend_from_slice(&r.max_seq.unwrap_or(0).to_le_bytes());
        let c = &r.counters;
        for v in [
            c.heartbeats,
            c.stale,
            c.suspicions,
            c.recoveries,
            c.stale_incarnation,
            c.incarnation_resets,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(r.samples.len() as u32).to_le_bytes());
        for s in &r.samples {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        if version >= 2 {
            buf.push(r.qos.is_some() as u8);
            if let Some(q) = &r.qos {
                buf.push(match q.output {
                    FdOutput::Trust => 0,
                    FdOutput::Suspect => 1,
                });
                buf.extend_from_slice(&q.origin.to_le_bytes());
                buf.extend_from_slice(&q.at.to_le_bytes());
                buf.extend_from_slice(&q.segment_start.to_le_bytes());
                buf.push(q.segment_opened_by_transition as u8);
                buf.extend_from_slice(&q.trust_time.to_le_bytes());
                buf.extend_from_slice(&q.suspect_time.to_le_bytes());
                buf.push(q.last_s.is_some() as u8);
                buf.extend_from_slice(&q.last_s.unwrap_or(0.0).to_le_bytes());
                buf.extend_from_slice(&q.s_transitions.to_le_bytes());
                buf.extend_from_slice(&q.t_transitions.to_le_bytes());
                for stats in [&q.recurrence, &q.duration, &q.good] {
                    buf.extend_from_slice(&stats.count().to_le_bytes());
                    buf.extend_from_slice(&stats.mean().to_le_bytes());
                    buf.extend_from_slice(&stats.m2().to_le_bytes());
                }
            }
        }
        if version >= 3 {
            buf.push(r.control.is_some() as u8);
            if let Some(c) = &r.control {
                buf.extend_from_slice(&c.t_d_upper.to_le_bytes());
                buf.extend_from_slice(&c.t_mr_lower.to_le_bytes());
                buf.extend_from_slice(&c.t_m_upper.to_le_bytes());
                buf.push(c.degraded as u8);
                buf.extend_from_slice(&c.reconfigurations.to_le_bytes());
                buf.extend_from_slice(&c.degradations.to_le_bytes());
                buf.extend_from_slice(&c.promotions.to_le_bytes());
                buf.extend_from_slice(&c.feasible_streak.to_le_bytes());
                buf.push(c.last_change.is_some() as u8);
                buf.extend_from_slice(&c.last_change.unwrap_or(0.0).to_le_bytes());
                buf.push(c.recommended_eta.is_some() as u8);
                buf.extend_from_slice(&c.recommended_eta.unwrap_or(0.0).to_le_bytes());
                buf.extend_from_slice(&c.loss_highest.to_le_bytes());
                buf.extend_from_slice(&c.loss_received.to_le_bytes());
            }
        }
    }
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Encodes a snapshot to its binary form (checksum included).
pub fn encode_snapshot(snap: &ClusterStateSnapshot) -> Vec<u8> {
    encode_snapshot_at(snap, SNAPSHOT_VERSION)
}

/// Encodes a snapshot in the legacy version-1 layout (no QoS blocks).
/// Test-only: exercises the forward-compatibility path where a new
/// monitor cold-starts from a pre-bump snapshot.
#[cfg(test)]
pub(crate) fn encode_snapshot_v1(snap: &ClusterStateSnapshot) -> Vec<u8> {
    encode_snapshot_at(snap, 1)
}

/// Encodes a snapshot in the legacy version-2 layout (QoS blocks, no
/// control blocks). Test-only: exercises restore from a pre-control
/// snapshot.
#[cfg(test)]
pub(crate) fn encode_snapshot_v2(snap: &ClusterStateSnapshot) -> Vec<u8> {
    encode_snapshot_at(snap, 2)
}

/// Encodes a snapshot in the legacy version-3 layout (QoS + control
/// blocks, no origin block). Test-only: exercises restore from a
/// pre-federation snapshot.
#[cfg(test)]
pub(crate) fn encode_snapshot_v3(snap: &ClusterStateSnapshot) -> Vec<u8> {
    encode_snapshot_at(snap, 3)
}

/// Sequential little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], SnapshotError> {
        let end = self.pos.checked_add(N).ok_or(SnapshotError::Corrupt(what))?;
        if end > self.buf.len() {
            return Err(SnapshotError::Corrupt(what));
        }
        let bytes: [u8; N] = self.buf[self.pos..end].try_into().expect("length checked");
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take::<1>(what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(what)?))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(what)?))
    }
}

/// Decodes one version-2 QoS tracker block. Checks the same field-level
/// invariants as the rest of the decoder (finite floats, nonnegative
/// variance) — deeper tracker invariants are re-validated by
/// `OnlineQos::from_state` at restore time.
fn decode_qos_block(cur: &mut Cursor<'_>) -> Result<QosTrackerState, SnapshotError> {
    let output = match cur.u8("qos output")? {
        0 => FdOutput::Trust,
        1 => FdOutput::Suspect,
        _ => return Err(SnapshotError::Corrupt("bad qos output")),
    };
    let origin = cur.f64("qos origin")?;
    let at = cur.f64("qos at")?;
    let segment_start = cur.f64("qos segment_start")?;
    let segment_opened_by_transition = match cur.u8("qos segment flag")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad qos segment flag")),
    };
    let trust_time = cur.f64("qos trust_time")?;
    let suspect_time = cur.f64("qos suspect_time")?;
    let has_last_s = match cur.u8("qos last_s flag")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad qos last_s flag")),
    };
    let raw_last_s = cur.f64("qos last_s")?;
    let s_transitions = cur.u64("qos s_transitions")?;
    let t_transitions = cur.u64("qos t_transitions")?;
    for v in [origin, at, segment_start, trust_time, suspect_time, raw_last_s] {
        if !v.is_finite() {
            return Err(SnapshotError::Corrupt("non-finite qos time"));
        }
    }
    let mut accs = [OnlineStats::new(); 3];
    for (i, what) in ["qos recurrence", "qos duration", "qos good"].iter().enumerate() {
        let count = cur.u64(what)?;
        let mean = cur.f64(what)?;
        let m2 = cur.f64(what)?;
        if !mean.is_finite() || !m2.is_finite() || m2 < 0.0 {
            return Err(SnapshotError::Corrupt("invalid qos accumulator"));
        }
        accs[i] = OnlineStats::from_parts(count, mean, m2);
    }
    Ok(QosTrackerState {
        origin,
        at,
        output,
        segment_start,
        segment_opened_by_transition,
        trust_time,
        suspect_time,
        last_s: has_last_s.then_some(raw_last_s),
        s_transitions,
        t_transitions,
        recurrence: accs[0],
        duration: accs[1],
        good: accs[2],
    })
}

/// Decodes one version-3 adaptive-control block. Field-level checks
/// only (finite floats, flag bytes ∈ {0, 1}); requirement-level
/// validity is re-checked by `QosRequirements::new` at restore time.
fn decode_control_block(cur: &mut Cursor<'_>) -> Result<ControlRecord, SnapshotError> {
    let t_d_upper = cur.f64("control t_d_upper")?;
    let t_mr_lower = cur.f64("control t_mr_lower")?;
    let t_m_upper = cur.f64("control t_m_upper")?;
    let degraded = match cur.u8("control degraded flag")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad control degraded flag")),
    };
    let reconfigurations = cur.u64("control reconfigurations")?;
    let degradations = cur.u64("control degradations")?;
    let promotions = cur.u64("control promotions")?;
    let feasible_streak = cur.u32("control feasible_streak")?;
    let has_last_change = match cur.u8("control last_change flag")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad control last_change flag")),
    };
    let raw_last_change = cur.f64("control last_change")?;
    let has_rec_eta = match cur.u8("control recommended_eta flag")? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("bad control recommended_eta flag")),
    };
    let raw_rec_eta = cur.f64("control recommended_eta")?;
    let loss_highest = cur.u64("control loss_highest")?;
    let loss_received = cur.u64("control loss_received")?;
    for v in [t_d_upper, t_mr_lower, t_m_upper, raw_last_change, raw_rec_eta] {
        if !v.is_finite() {
            return Err(SnapshotError::Corrupt("non-finite control field"));
        }
    }
    if loss_received > loss_highest {
        return Err(SnapshotError::Corrupt("control loss counts inconsistent"));
    }
    Ok(ControlRecord {
        t_d_upper,
        t_mr_lower,
        t_m_upper,
        degraded,
        reconfigurations,
        degradations,
        promotions,
        feasible_streak,
        last_change: has_last_change.then_some(raw_last_change),
        recommended_eta: has_rec_eta.then_some(raw_rec_eta),
        loss_highest,
        loss_received,
    })
}

/// Decodes a snapshot, verifying framing and checksum.
///
/// # Errors
///
/// [`SnapshotError::Corrupt`] on any malformation; never panics.
pub fn decode_snapshot(buf: &[u8]) -> Result<ClusterStateSnapshot, SnapshotError> {
    if buf.len() < 8 {
        return Err(SnapshotError::Corrupt("shorter than its checksum"));
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let declared = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != declared {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }
    let mut cur = Cursor { buf: body, pos: 0 };
    if cur.take::<2>("magic")? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic"));
    }
    let version = cur.u16("version")?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::Corrupt("unknown version"));
    }
    let taken_at = cur.f64("taken_at")?;
    if !taken_at.is_finite() || taken_at < 0.0 {
        return Err(SnapshotError::Corrupt("non-finite or negative taken_at"));
    }
    let origin = if version >= 4 {
        let has_origin = match cur.u8("origin flag")? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("bad origin flag")),
        };
        let node = cur.u64("origin node")?;
        let incarnation = cur.u64("origin incarnation")?;
        has_origin.then_some(SnapshotOrigin { node, incarnation })
    } else {
        None
    };
    let count = cur.u32("peer count")? as usize;
    let mut peers = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        let peer = cur.u64("peer id")?;
        let incarnation = cur.u64("incarnation")?;
        let eta = cur.f64("eta")?;
        let alpha = cur.f64("alpha")?;
        if !eta.is_finite() || !alpha.is_finite() {
            return Err(SnapshotError::Corrupt("non-finite peer parameters"));
        }
        let window = cur.u32("window")? as usize;
        let has_max_seq = match cur.u8("max_seq flag")? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("bad max_seq flag")),
        };
        let raw_max_seq = cur.u64("max_seq")?;
        let max_seq = has_max_seq.then_some(raw_max_seq);
        let counters = PeerCounters {
            heartbeats: cur.u64("heartbeats counter")?,
            stale: cur.u64("stale counter")?,
            suspicions: cur.u64("suspicions counter")?,
            recoveries: cur.u64("recoveries counter")?,
            stale_incarnation: cur.u64("stale_incarnation counter")?,
            incarnation_resets: cur.u64("incarnation_resets counter")?,
        };
        let sample_count = cur.u32("sample count")? as usize;
        let mut samples = Vec::with_capacity(sample_count.min(4096));
        for _ in 0..sample_count {
            let s = cur.f64("sample")?;
            if !s.is_finite() {
                return Err(SnapshotError::Corrupt("non-finite sample"));
            }
            samples.push(s);
        }
        let qos = if version >= 2 {
            match cur.u8("qos flag")? {
                0 => None,
                1 => Some(decode_qos_block(&mut cur)?),
                _ => return Err(SnapshotError::Corrupt("bad qos flag")),
            }
        } else {
            None
        };
        let control = if version >= 3 {
            match cur.u8("control flag")? {
                0 => None,
                1 => Some(decode_control_block(&mut cur)?),
                _ => return Err(SnapshotError::Corrupt("bad control flag")),
            }
        } else {
            None
        };
        peers.push(PeerRecord {
            peer,
            incarnation,
            eta,
            alpha,
            window,
            max_seq,
            counters,
            samples,
            qos,
            control,
        });
    }
    if cur.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(ClusterStateSnapshot { taken_at, origin, peers })
}

/// Writes a snapshot atomically: encode, write to `<path>.tmp`, rename.
///
/// # Errors
///
/// Propagates filesystem errors; on error the previous snapshot (if
/// any) is left untouched.
pub fn write_snapshot_file(path: &Path, snap: &ClusterStateSnapshot) -> io::Result<()> {
    let bytes = encode_snapshot(snap);
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads a snapshot file. A missing file is `Ok(None)` — a monitor
/// that has never written one simply starts cold.
///
/// # Errors
///
/// [`SnapshotError::Io`] on read failures other than not-found,
/// [`SnapshotError::Corrupt`] if the bytes do not decode.
pub fn read_snapshot_file(path: &Path) -> Result<Option<ClusterStateSnapshot>, SnapshotError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    decode_snapshot(&bytes).map(Some)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_metrics::OnlineQos;

    fn sample_qos_state() -> QosTrackerState {
        let mut q = OnlineQos::new(0.5, FdOutput::Suspect);
        q.observe(1.0, FdOutput::Trust);
        q.observe(4.0, FdOutput::Suspect);
        q.observe(4.5, FdOutput::Trust);
        q.observe(9.0, FdOutput::Suspect);
        q.observe(9.25, FdOutput::Trust);
        q.advance(12.25);
        q.state()
    }

    fn sample_snapshot() -> ClusterStateSnapshot {
        ClusterStateSnapshot {
            taken_at: 12.25,
            origin: Some(SnapshotOrigin { node: 2, incarnation: 5 }),
            peers: vec![
                PeerRecord {
                    peer: 7,
                    incarnation: 3,
                    eta: 0.02,
                    alpha: 0.05,
                    window: 32,
                    max_seq: Some(41),
                    counters: PeerCounters {
                        heartbeats: 41,
                        stale: 2,
                        suspicions: 1,
                        recoveries: 2,
                        stale_incarnation: 5,
                        incarnation_resets: 3,
                    },
                    samples: vec![0.101, 0.099, 0.1005],
                    qos: Some(sample_qos_state()),
                    control: Some(ControlRecord {
                        t_d_upper: 0.5,
                        t_mr_lower: 120.0,
                        t_m_upper: 0.2,
                        degraded: true,
                        reconfigurations: 4,
                        degradations: 2,
                        promotions: 1,
                        feasible_streak: 1,
                        last_change: Some(11.5),
                        recommended_eta: Some(0.0625),
                        loss_highest: 41,
                        loss_received: 39,
                    }),
                },
                PeerRecord {
                    peer: 9,
                    incarnation: 0,
                    eta: 0.05,
                    alpha: 0.1,
                    window: 16,
                    max_seq: None,
                    counters: PeerCounters::default(),
                    samples: vec![],
                    qos: None,
                    control: None,
                },
            ],
        }
    }

    #[test]
    fn roundtrips() {
        let snap = sample_snapshot();
        let buf = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&buf).unwrap(), snap);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = ClusterStateSnapshot { taken_at: 0.0, origin: None, peers: vec![] };
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn qos_state_survives_the_roundtrip_exactly() {
        let snap = sample_snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        let restored = OnlineQos::from_state(decoded.peers[0].qos.unwrap()).unwrap();
        let original = OnlineQos::from_state(sample_qos_state()).unwrap();
        assert_eq!(restored, original);
        assert_eq!(restored.observed(20.0), original.observed(20.0));
    }

    #[test]
    fn version_1_snapshots_still_decode() {
        let snap = sample_snapshot();
        let v1 = encode_snapshot_v1(&snap);
        let decoded = decode_snapshot(&v1).unwrap();
        assert_eq!(decoded.taken_at, snap.taken_at);
        assert_eq!(decoded.peers.len(), 2);
        for (got, want) in decoded.peers.iter().zip(&snap.peers) {
            assert_eq!(got.qos, None, "v1 carries no qos state");
            assert_eq!(got.peer, want.peer);
            assert_eq!(got.counters, want.counters);
            assert_eq!(got.samples, want.samples);
            assert_eq!(got.max_seq, want.max_seq);
        }
    }

    #[test]
    fn version_2_snapshots_still_decode() {
        let snap = sample_snapshot();
        let v2 = encode_snapshot_v2(&snap);
        let decoded = decode_snapshot(&v2).unwrap();
        assert_eq!(decoded.taken_at, snap.taken_at);
        assert_eq!(decoded.peers.len(), 2);
        for (got, want) in decoded.peers.iter().zip(&snap.peers) {
            assert_eq!(got.control, None, "v2 carries no control state");
            assert_eq!(got.qos, want.qos, "v2 does carry qos state");
            assert_eq!(got.peer, want.peer);
            assert_eq!(got.counters, want.counters);
            assert_eq!(got.samples, want.samples);
            assert_eq!(got.max_seq, want.max_seq);
        }
    }

    #[test]
    fn version_3_snapshots_still_decode() {
        let snap = sample_snapshot();
        let v3 = encode_snapshot_v3(&snap);
        let decoded = decode_snapshot(&v3).unwrap();
        assert_eq!(decoded.taken_at, snap.taken_at);
        assert_eq!(decoded.origin, None, "v3 carries no origin block");
        assert_eq!(decoded.peers, snap.peers, "v3 carries everything else");
    }

    #[test]
    fn origin_roundtrips_present_and_absent() {
        let with = sample_snapshot();
        assert_eq!(decode_snapshot(&encode_snapshot(&with)).unwrap().origin, with.origin);
        let mut without = sample_snapshot();
        without.origin = None;
        assert_eq!(decode_snapshot(&encode_snapshot(&without)).unwrap(), without);
    }

    #[test]
    fn bad_origin_flag_is_rejected() {
        let mut buf = encode_snapshot(&sample_snapshot());
        buf[12] = 2; // origin flag follows magic+version+taken_at
        let body_len = buf.len() - 8;
        let sum = fnv1a(&buf[..body_len]);
        buf[body_len..].copy_from_slice(&sum.to_le_bytes());
        match decode_snapshot(&buf) {
            Err(SnapshotError::Corrupt("bad origin flag")) => {}
            other => panic!("expected bad origin flag, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_control_loss_counts_are_rejected() {
        let mut snap = sample_snapshot();
        snap.peers[0].control.as_mut().unwrap().loss_received = 42; // > highest (41)
        match decode_snapshot(&encode_snapshot(&snap)) {
            Err(SnapshotError::Corrupt("control loss counts inconsistent")) => {}
            other => panic!("expected loss-count rejection, got {other:?}"),
        }
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut buf = encode_snapshot(&sample_snapshot());
        buf[2..4].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let body_len = buf.len() - 8;
        let sum = fnv1a(&buf[..body_len]);
        buf[body_len..].copy_from_slice(&sum.to_le_bytes());
        match decode_snapshot(&buf) {
            Err(SnapshotError::Corrupt("unknown version")) => {}
            other => panic!("expected unknown version, got {other:?}"),
        }
    }

    #[test]
    fn any_single_byte_flip_is_detected() {
        let buf = encode_snapshot(&sample_snapshot());
        for idx in 0..buf.len() {
            let mut bad = buf.clone();
            bad[idx] ^= 0x40;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flip at byte {idx} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode_snapshot(&sample_snapshot());
        for cut in 1..buf.len() {
            assert!(decode_snapshot(&buf[..buf.len() - cut]).is_err());
        }
        assert!(decode_snapshot(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut buf = encode_snapshot(&sample_snapshot());
        buf.extend_from_slice(&[0u8; 4]);
        assert!(decode_snapshot(&buf).is_err());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-snap-test-{}.bin",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);
        assert!(read_snapshot_file(&path).unwrap().is_none(), "missing = cold start");
        let snap = sample_snapshot();
        write_snapshot_file(&path, &snap).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), Some(snap.clone()));
        // Overwrite is atomic-by-rename; the second write replaces the first.
        let snap2 = ClusterStateSnapshot { taken_at: 99.0, origin: None, peers: vec![] };
        write_snapshot_file(&path, &snap2).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), Some(snap2));
        fs::remove_file(&path).unwrap();
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// A valid-by-construction QoS tracker state: drive a real
        /// tracker through a generated output schedule, so every
        /// invariant `OnlineQos::from_state` checks holds by
        /// construction rather than by filtering.
        fn arb_qos_state() -> impl Strategy<Value = QosTrackerState> {
            (
                0.0f64..10.0,
                proptest::collection::vec(0.01f64..5.0, 0..12),
                proptest::bool::ANY,
            )
                .prop_map(|(origin, gaps, start_trust)| {
                    let first =
                        if start_trust { FdOutput::Trust } else { FdOutput::Suspect };
                    let mut q = OnlineQos::new(origin, first);
                    let mut t = origin;
                    let mut out = first;
                    for gap in gaps {
                        t += gap;
                        out = match out {
                            FdOutput::Trust => FdOutput::Suspect,
                            FdOutput::Suspect => FdOutput::Trust,
                        };
                        q.observe(t, out);
                    }
                    q.advance(t + 0.5);
                    q.state()
                })
        }

        fn arb_control_record() -> impl Strategy<Value = ControlRecord> {
            (
                (0.1f64..100.0, 1.0f64..1.0e6, 0.1f64..100.0),
                proptest::bool::ANY,
                (0u64..1000, 0u64..1000, 0u64..1000, 0u32..100),
                proptest::option::of(0.0f64..1000.0),
                proptest::option::of(0.001f64..10.0),
                (0u64..10_000, 0u64..10_000),
            )
                .prop_map(
                    |(req, degraded, counts, last_change, recommended_eta, loss)| {
                        ControlRecord {
                            t_d_upper: req.0,
                            t_mr_lower: req.1,
                            t_m_upper: req.2,
                            degraded,
                            reconfigurations: counts.0,
                            degradations: counts.1,
                            promotions: counts.2,
                            feasible_streak: counts.3,
                            last_change,
                            recommended_eta,
                            loss_highest: loss.0.max(loss.1),
                            loss_received: loss.0.min(loss.1),
                        }
                    },
                )
        }

        fn arb_peer_record() -> impl Strategy<Value = PeerRecord> {
            (
                (0u64..u64::MAX, 0u64..100),
                (0.001f64..10.0, 0.001f64..10.0, 2usize..128),
                proptest::option::of(1u64..100_000),
                proptest::collection::vec(-1.0f64..1.0, 0..16),
                proptest::option::of(arb_qos_state()),
                proptest::option::of(arb_control_record()),
                proptest::collection::vec(0u64..1_000_000, 6),
            )
                .prop_map(|(ids, params, max_seq, samples, qos, control, c)| PeerRecord {
                    peer: ids.0,
                    incarnation: ids.1,
                    eta: params.0,
                    alpha: params.1,
                    window: params.2,
                    max_seq,
                    counters: PeerCounters {
                        heartbeats: c[0],
                        stale: c[1],
                        suspicions: c[2],
                        recoveries: c[3],
                        stale_incarnation: c[4],
                        incarnation_resets: c[5],
                    },
                    samples,
                    qos,
                    control,
                })
        }

        fn arb_snapshot() -> impl Strategy<Value = ClusterStateSnapshot> {
            (
                0.0f64..1.0e6,
                proptest::option::of((0u64..64, 0u64..32)),
                proptest::collection::vec(arb_peer_record(), 0..6),
            )
                .prop_map(|(taken_at, origin, peers)| ClusterStateSnapshot {
                    taken_at,
                    origin: origin
                        .map(|(node, incarnation)| SnapshotOrigin { node, incarnation }),
                    peers,
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The full back-compat matrix: any generated snapshot,
            /// encoded at each legacy version, must restore under the
            /// v4-aware decoder with exactly the fields that version
            /// carried — and the current encoding must roundtrip
            /// losslessly.
            #[test]
            fn prop_snapshot_backcompat_matrix(snap in arb_snapshot()) {
                // v4 (current): lossless.
                prop_assert_eq!(
                    decode_snapshot(&encode_snapshot(&snap)).unwrap(),
                    snap.clone()
                );

                for version in [1u16, 2, 3] {
                    let buf = encode_snapshot_at(&snap, version);
                    let got = decode_snapshot(&buf).unwrap();
                    prop_assert_eq!(got.taken_at, snap.taken_at);
                    prop_assert_eq!(got.origin, None, "pre-v4 has no origin");
                    prop_assert_eq!(got.peers.len(), snap.peers.len());
                    for (g, w) in got.peers.iter().zip(&snap.peers) {
                        prop_assert_eq!(g.peer, w.peer);
                        prop_assert_eq!(g.incarnation, w.incarnation);
                        prop_assert_eq!(g.eta, w.eta);
                        prop_assert_eq!(g.alpha, w.alpha);
                        prop_assert_eq!(g.window, w.window);
                        prop_assert_eq!(g.max_seq, w.max_seq);
                        prop_assert_eq!(g.counters, w.counters);
                        prop_assert_eq!(&g.samples, &w.samples);
                        if version >= 2 {
                            prop_assert_eq!(g.qos, w.qos);
                        } else {
                            prop_assert_eq!(g.qos, None);
                        }
                        if version >= 3 {
                            prop_assert_eq!(g.control, w.control);
                        } else {
                            prop_assert_eq!(g.control, None);
                        }
                    }
                }
            }

            /// Every legacy encoding survives truncation and bit flips
            /// without panicking — the decoder stays total across the
            /// whole version range.
            #[test]
            fn prop_legacy_corruption_never_panics(
                snap in arb_snapshot(),
                version in 1u16..=4,
                idx in 0usize..4096,
                flip in 1u8..255,
                cut in 0usize..64,
            ) {
                let mut buf = encode_snapshot_at(&snap, version);
                let idx = idx % buf.len();
                buf[idx] ^= flip;
                buf.truncate(buf.len() - cut.min(buf.len()));
                let _ = decode_snapshot(&buf);
            }
        }
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_panic() {
        let path = std::env::temp_dir().join(format!(
            "fd-cluster-snap-corrupt-{}.bin",
            std::process::id()
        ));
        fs::write(&path, b"garbage").unwrap();
        match read_snapshot_file(&path) {
            Err(SnapshotError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        fs::remove_file(&path).unwrap();
    }
}
