//! HTTP metrics endpoint for a [`ClusterMonitor`].
//!
//! Serves the whole registry's live QoS — every peer's online `P_A`,
//! `E(T_MR)`, `E(T_M)`, `E(T_G)`, transition counters — plus the
//! cluster-wide [`ClusterStats`] in two representations:
//!
//! * `GET /metrics` — Prometheus text exposition format (version 0.0.4),
//!   one time series per peer per metric, labelled `{peer="<id>"}`;
//! * `GET /metrics.json` — the same data as a single JSON document.
//!
//! The server is deliberately tiny: a std `TcpListener`, one supervised
//! accept thread (same `catch_unwind` + bounded-restart pattern as the
//! cluster ticker), one request per connection, `Connection: close`. It
//! is an *operational* endpoint for scrapers and debugging, not a web
//! framework; anything but the two known paths gets a 404.
//!
//! Mean-interval gauges (`fd_peer_mean_*_seconds`) are emitted only once
//! the corresponding interval has actually been observed — a peer that
//! has never had a mistake corrected exports no
//! `fd_peer_mean_mistake_duration_seconds` series rather than a fake 0.

use crate::backoff;
use crate::monitor::{ClusterMonitor, ClusterStats, PeerQos};
use crate::registry::QosState;
use fd_runtime::{Health, RuntimeError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long one request may take to arrive/drain before the connection
/// is dropped — a stuck scraper must not wedge the accept thread.
const STREAM_TIMEOUT: Duration = Duration::from_millis(500);

/// Most header bytes read from a request before giving up on it.
const MAX_REQUEST_HEAD: usize = 4096;

/// Restart budget for the supervised accept loop.
const MAX_ACCEPT_RESTARTS: u64 = 8;

/// An extra producer of metrics mounted on the same endpoint: the
/// federation tier (and anything else living alongside a monitor)
/// appends its own Prometheus families and JSON fields to every scrape
/// without the exporter knowing its type. Implementations must be
/// cheap and non-blocking — they run on the accept thread.
pub trait MetricsSource: Send + Sync {
    /// Appends Prometheus text-format families to `out` (use
    /// [`family`] for correct HELP/TYPE framing).
    fn prometheus(&self, out: &mut String);

    /// Extra top-level JSON fields as `(key, rendered-value)` pairs;
    /// values must already be valid JSON (a number, `"string"`, or an
    /// object).
    fn json_fields(&self) -> Vec<(String, String)>;
}

struct ExporterInner {
    monitor: ClusterMonitor,
    sources: Vec<Arc<dyn MetricsSource>>,
    listener: TcpListener,
    addr: SocketAddr,
    stop: AtomicBool,
    health: Mutex<Health>,
    requests: AtomicU64,
    restarts: AtomicU64,
}

/// A running metrics endpoint bound to a local TCP address.
///
/// ```no_run
/// use fd_cluster::{ClusterConfig, ClusterMonitor, MetricsExporter};
///
/// let monitor = ClusterMonitor::spawn(ClusterConfig::default()).unwrap();
/// let exporter = MetricsExporter::bind("127.0.0.1:0", monitor.clone()).unwrap();
/// println!("scrape http://{}/metrics", exporter.local_addr());
/// # exporter.shutdown();
/// ```
pub struct MetricsExporter {
    inner: Arc<ExporterInner>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for MetricsExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsExporter").field("addr", &self.inner.addr).finish()
    }
}

impl MetricsExporter {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// supervised accept thread serving `monitor`'s metrics.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Net`] if the listener cannot bind,
    /// [`RuntimeError::Spawn`] if the accept thread cannot start.
    pub fn bind(addr: impl ToSocketAddrs, monitor: ClusterMonitor) -> Result<Self, RuntimeError> {
        Self::bind_with_sources(addr, monitor, Vec::new())
    }

    /// [`bind`](Self::bind), plus extra [`MetricsSource`]s whose output
    /// is appended to every `/metrics` and `/metrics.json` response —
    /// how the federation tier surfaces its `fd_fed_*` series through
    /// the same endpoint as the embedded monitor.
    ///
    /// # Errors
    ///
    /// Same as [`bind`](Self::bind).
    pub fn bind_with_sources(
        addr: impl ToSocketAddrs,
        monitor: ClusterMonitor,
        sources: Vec<Arc<dyn MetricsSource>>,
    ) -> Result<Self, RuntimeError> {
        let listener = TcpListener::bind(addr)
            .map_err(|source| RuntimeError::Net { op: "bind", source })?;
        let local = listener
            .local_addr()
            .map_err(|source| RuntimeError::Net { op: "local_addr", source })?;
        let inner = Arc::new(ExporterInner {
            monitor,
            sources,
            listener,
            addr: local,
            stop: AtomicBool::new(false),
            health: Mutex::new(Health::Healthy),
            requests: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
        });
        let worker = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("fd-metrics-exporter".into())
            .spawn(move || supervise(worker))
            .map_err(|source| RuntimeError::Spawn { thread: "fd-metrics-exporter", source })?;
        Ok(Self { inner, thread: Mutex::new(Some(handle)) })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Health of the accept thread: `Healthy` until its first panic,
    /// `Degraded` while the restart budget lasts, `Stopped` after
    /// shutdown or budget exhaustion.
    pub fn health(&self) -> Health {
        self.inner.health.lock().clone()
    }

    /// Requests answered (any status) since bind.
    pub fn requests_served(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Stops the accept thread and waits for it. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.inner.addr, STREAM_TIMEOUT);
        if let Some(handle) = self.thread.lock().take() {
            let _ = handle.join();
        }
        *self.inner.health.lock() = Health::Stopped;
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Outer supervision: restart the accept loop on panic, bounded, with a
/// jittered exponential pause between attempts so a cluster of exporters
/// felled by the same cause does not restart in lockstep.
fn supervise(inner: Arc<ExporterInner>) {
    let mut rng = StdRng::from_os_rng();
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| accept_loop(&inner)));
        match outcome {
            Ok(()) => {
                *inner.health.lock() = Health::Stopped;
                return;
            }
            Err(payload) => {
                let reason = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let restarts = inner.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                if restarts > MAX_ACCEPT_RESTARTS || inner.stop.load(Ordering::SeqCst) {
                    *inner.health.lock() = Health::Stopped;
                    return;
                }
                *inner.health.lock() = Health::Degraded { reason };
                std::thread::sleep(backoff::restart_delay(
                    &mut rng,
                    restarts,
                    Duration::from_millis(2),
                    Duration::from_millis(50),
                ));
            }
        }
    }
}

fn accept_loop(inner: &ExporterInner) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match inner.listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue, // transient accept errors: keep serving
        };
        if inner.stop.load(Ordering::SeqCst) {
            return; // the shutdown wake-up connection
        }
        inner.requests.fetch_add(1, Ordering::Relaxed);
        let _ = serve_one(inner, stream); // a broken client is its own problem
    }
}

/// Reads one request head, routes it, writes one response.
fn serve_one(inner: &ExporterInner, mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(STREAM_TIMEOUT))?;
    stream.set_write_timeout(Some(STREAM_TIMEOUT))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < MAX_REQUEST_HEAD {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => break, // timeout or reset: respond to what we have
        }
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .map(String::from_utf8_lossy)
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain; charset=utf-8", "method not allowed\n".to_string())
    } else {
        match path {
            "/metrics" => {
                let mut body = render_prometheus(&inner.monitor);
                for source in &inner.sources {
                    source.prometheus(&mut body);
                }
                ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
            }
            "/metrics.json" => {
                let mut body = render_json(&inner.monitor);
                for source in &inner.sources {
                    for (key, value) in source.json_fields() {
                        // Splice each extra field before the document's
                        // closing brace; the render always ends in "]}".
                        body.pop();
                        let _ = write!(body, ",\"{key}\":{value}}}");
                    }
                }
                ("200 OK", "application/json", body)
            }
            _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One Prometheus metric family: HELP/TYPE header plus its series.
/// Series entries label their value with `{peer="<id>"}` when the id is
/// `Some` (federation sources reuse the label position for node ids).
/// Public so [`MetricsSource`] implementations emit well-formed text.
pub fn family(out: &mut String, name: &str, help: &str, kind: &str, series: &[(Option<u64>, f64)]) {
    if series.is_empty() {
        return;
    }
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    for (peer, value) in series {
        match peer {
            Some(p) => {
                let _ = writeln!(out, "{name}{{peer=\"{p}\"}} {value}");
            }
            None => {
                let _ = writeln!(out, "{name} {value}");
            }
        }
    }
}

/// Renders the full cluster state in the Prometheus text exposition
/// format (0.0.4): cluster-wide counters unlabelled, per-peer metrics
/// labelled `{peer="<id>"}`.
pub fn render_prometheus(monitor: &ClusterMonitor) -> String {
    let stats = monitor.stats();
    let peers = monitor.qos_snapshot();
    let mut out = String::with_capacity(1024 + peers.len() * 512);

    let cluster: &[(&str, &str, &str, f64)] = &[
        ("fd_cluster_peers", "Registered peers.", "gauge", stats.peers as f64),
        ("fd_cluster_ticks_total", "Ticker sweeps since spawn.", "counter", stats.ticks as f64),
        (
            "fd_cluster_timers_fired_total",
            "Wheel expirations that matched a live registration.",
            "counter",
            stats.timers_fired as f64,
        ),
        (
            "fd_cluster_events_dropped_total",
            "Membership events lost to full subscriber channels.",
            "counter",
            stats.events_dropped as f64,
        ),
        (
            "fd_cluster_subscribers_disconnected_total",
            "Subscribers pruned after their receiver was dropped.",
            "counter",
            stats.subscribers_disconnected as f64,
        ),
        (
            "fd_cluster_unknown_heartbeats_total",
            "Heartbeats for unregistered peers.",
            "counter",
            stats.unknown_heartbeats as f64,
        ),
        (
            "fd_cluster_stale_incarnation_rejects_total",
            "Heartbeats rejected as previous-life traffic.",
            "counter",
            stats.stale_incarnation_rejects as f64,
        ),
        (
            "fd_cluster_incarnation_resets_total",
            "Peer detector resets from newer incarnations.",
            "counter",
            stats.incarnation_resets as f64,
        ),
        (
            "fd_cluster_ticker_restarts_total",
            "Supervised ticker restarts after panics.",
            "counter",
            stats.ticker_restarts as f64,
        ),
        (
            "fd_cluster_snapshots_written_total",
            "State snapshots persisted.",
            "counter",
            stats.snapshots_written as f64,
        ),
        (
            "fd_cluster_snapshot_errors_total",
            "Snapshot reads/writes that failed.",
            "counter",
            stats.snapshot_errors as f64,
        ),
        (
            "fd_cluster_reconfigurations_total",
            "Control-plane detector parameter swaps applied.",
            "counter",
            stats.reconfigurations as f64,
        ),
        (
            "fd_cluster_degraded_peers",
            "Peers currently running best-effort parameters.",
            "gauge",
            stats.degraded_peers as f64,
        ),
        (
            "fd_cluster_degradations_total",
            "Nominal-to-Degraded transitions declared by the control plane.",
            "counter",
            stats.degradations as f64,
        ),
        (
            "fd_cluster_promotions_total",
            "Degraded-to-Nominal re-promotions declared by the control plane.",
            "counter",
            stats.promotions as f64,
        ),
        (
            "fd_cluster_control_rounds_total",
            "Control-plane reconfiguration rounds completed.",
            "counter",
            stats.control_rounds as f64,
        ),
        (
            "fd_cluster_control_restarts_total",
            "Supervised control-thread restarts after panics.",
            "counter",
            stats.control_restarts as f64,
        ),
    ];
    for (name, help, kind, value) in cluster {
        family(&mut out, name, help, kind, &[(None, *value)]);
    }

    let per_peer = |f: &dyn Fn(&PeerQos) -> Option<f64>| -> Vec<(Option<u64>, f64)> {
        peers.iter().filter_map(|p| f(p).map(|v| (Some(p.peer), v))).collect()
    };
    family(
        &mut out,
        "fd_peer_output",
        "Current detector output: 1 trusted, 0 suspected.",
        "gauge",
        &per_peer(&|p| Some(if p.output.is_trust() { 1.0 } else { 0.0 })),
    );
    family(
        &mut out,
        "fd_peer_query_accuracy",
        "Time-weighted query accuracy probability P_A over the observation window.",
        "gauge",
        &per_peer(&|p| Some(p.qos.query_accuracy())),
    );
    family(
        &mut out,
        "fd_peer_mistake_rate",
        "Average mistake rate lambda_M (S-transitions per second).",
        "gauge",
        &per_peer(&|p| Some(p.qos.mistake_rate())),
    );
    family(
        &mut out,
        "fd_peer_window_seconds",
        "Length of the QoS observation window.",
        "gauge",
        &per_peer(&|p| Some(p.qos.window)),
    );
    family(
        &mut out,
        "fd_peer_heartbeats_total",
        "Heartbeats recorded for this peer.",
        "counter",
        &per_peer(&|p| Some(p.counters.heartbeats as f64)),
    );
    family(
        &mut out,
        "fd_peer_suspicions_total",
        "S-transitions (Trust to Suspect) observed.",
        "counter",
        &per_peer(&|p| Some(p.counters.suspicions as f64)),
    );
    family(
        &mut out,
        "fd_peer_recoveries_total",
        "T-transitions (Suspect to Trust) observed.",
        "counter",
        &per_peer(&|p| Some(p.counters.recoveries as f64)),
    );
    family(
        &mut out,
        "fd_peer_mean_mistake_recurrence_seconds",
        "Mean observed mistake recurrence time E(T_MR); absent until two S-transitions.",
        "gauge",
        &per_peer(&|p| p.qos.mean_mistake_recurrence()),
    );
    family(
        &mut out,
        "fd_peer_mean_mistake_duration_seconds",
        "Mean observed mistake duration E(T_M); absent until a mistake is corrected.",
        "gauge",
        &per_peer(&|p| p.qos.mean_mistake_duration()),
    );
    family(
        &mut out,
        "fd_peer_mean_good_period_seconds",
        "Mean observed good period E(T_G); absent until a good period completes.",
        "gauge",
        &per_peer(&|p| p.qos.mean_good_period()),
    );
    family(
        &mut out,
        "fd_peer_qos_state",
        "Control-plane QoS state: 0 nominal, 1 degraded (best-effort parameters).",
        "gauge",
        &per_peer(&|p| Some(if p.qos_state == QosState::Degraded { 1.0 } else { 0.0 })),
    );
    out
}

fn json_stats(stats: &ClusterStats) -> String {
    format!(
        "{{\"peers\":{},\"ticks\":{},\"timers_fired\":{},\"events_dropped\":{},\
         \"subscribers_disconnected\":{},\"unknown_heartbeats\":{},\
         \"stale_incarnation_rejects\":{},\"incarnation_resets\":{},\
         \"ticker_restarts\":{},\"expirations_deferred\":{},\"entries_shed\":{},\
         \"snapshots_written\":{},\"snapshot_errors\":{},\"peers_restored\":{},\
         \"reconfigurations\":{},\"degraded_peers\":{},\"degradations\":{},\
         \"promotions\":{},\"control_rounds\":{},\"control_restarts\":{}}}",
        stats.peers,
        stats.ticks,
        stats.timers_fired,
        stats.events_dropped,
        stats.subscribers_disconnected,
        stats.unknown_heartbeats,
        stats.stale_incarnation_rejects,
        stats.incarnation_resets,
        stats.ticker_restarts,
        stats.expirations_deferred,
        stats.entries_shed,
        stats.snapshots_written,
        stats.snapshot_errors,
        stats.peers_restored,
        stats.reconfigurations,
        stats.degraded_peers,
        stats.degradations,
        stats.promotions,
        stats.control_rounds,
        stats.control_restarts,
    )
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x}"),
        None => "null".to_string(),
    }
}

/// Renders the full cluster state as one JSON document:
/// `{"now": <seconds>, "stats": {...}, "peers": [...]}`. Unobserved mean
/// intervals are `null`, never a fake zero.
pub fn render_json(monitor: &ClusterMonitor) -> String {
    let stats = monitor.stats();
    let peers = monitor.qos_snapshot();
    let mut out = String::with_capacity(256 + peers.len() * 256);
    let _ = write!(out, "{{\"now\":{},\"stats\":{},\"peers\":[", monitor.now(), json_stats(&stats));
    for (i, p) in peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"peer\":{},\"output\":\"{}\",\"qos_state\":\"{}\",\"heartbeats\":{},\
             \"suspicions\":{},\
             \"recoveries\":{},\"window\":{},\"query_accuracy\":{},\"mistake_rate\":{},\
             \"mean_mistake_recurrence\":{},\"mean_mistake_duration\":{},\"mean_good_period\":{}}}",
            p.peer,
            if p.output.is_trust() { "trust" } else { "suspect" },
            if p.qos_state == QosState::Degraded { "degraded" } else { "nominal" },
            p.counters.heartbeats,
            p.counters.suspicions,
            p.counters.recoveries,
            p.qos.window,
            p.qos.query_accuracy(),
            p.qos.mistake_rate(),
            json_opt(p.qos.mean_mistake_recurrence()),
            json_opt(p.qos.mean_mistake_duration()),
            json_opt(p.qos.mean_good_period()),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{ClusterConfig, PeerConfig};
    use fd_core::Heartbeat;

    fn monitor_with_peers(n: u64) -> ClusterMonitor {
        let m = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        for p in 0..n {
            m.add_peer(p, PeerConfig::new(0.05, 0.1)).unwrap();
            m.record(p, Heartbeat::new(1, m.now()));
        }
        m
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).expect("read");
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_text() {
        let m = monitor_with_peers(3);
        let exporter = MetricsExporter::bind("127.0.0.1:0", m.clone()).expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE fd_cluster_peers gauge"));
        assert!(body.contains("fd_cluster_peers 3"));
        for p in 0..3 {
            assert!(body.contains(&format!("fd_peer_query_accuracy{{peer=\"{p}\"}}")));
            assert!(body.contains(&format!("fd_peer_output{{peer=\"{p}\"}} 1")));
        }
        // No mistakes yet: the mean-interval families must be absent.
        assert!(!body.contains("fd_peer_mean_mistake_duration_seconds{"));
        // Control-plane families are always present (all peers nominal).
        assert!(body.contains("fd_cluster_degraded_peers 0"));
        assert!(body.contains("# TYPE fd_cluster_reconfigurations_total counter"));
        assert!(body.contains("fd_cluster_control_restarts_total 0"));
        assert!(body.contains("fd_peer_qos_state{peer=\"0\"} 0"));
        assert!(exporter.requests_served() >= 1);
        exporter.shutdown();
        m.shutdown();
    }

    #[test]
    fn serves_json() {
        let m = monitor_with_peers(2);
        let exporter = MetricsExporter::bind("127.0.0.1:0", m.clone()).expect("bind");
        let (head, body) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"));
        assert!(body.starts_with("{\"now\":"));
        assert!(body.contains("\"peers\":["));
        assert!(body.contains("\"peer\":0"));
        assert!(body.contains("\"output\":\"trust\""));
        assert!(body.contains("\"qos_state\":\"nominal\""));
        assert!(body.contains("\"degraded_peers\":0"));
        assert!(body.contains("\"mean_mistake_duration\":null"));
        assert!(body.ends_with("]}"));
        exporter.shutdown();
        m.shutdown();
    }

    struct FakeSource;

    impl MetricsSource for FakeSource {
        fn prometheus(&self, out: &mut String) {
            family(out, "fd_fed_fake", "Fake federation gauge.", "gauge", &[(None, 7.0)]);
        }

        fn json_fields(&self) -> Vec<(String, String)> {
            vec![("federation".into(), "{\"nodes\":4}".into())]
        }
    }

    #[test]
    fn extra_sources_appear_in_both_formats() {
        let m = monitor_with_peers(1);
        let exporter =
            MetricsExporter::bind_with_sources("127.0.0.1:0", m.clone(), vec![Arc::new(FakeSource)])
                .expect("bind");
        let (_, text) = http_get(exporter.local_addr(), "/metrics");
        assert!(text.contains("# TYPE fd_fed_fake gauge"));
        assert!(text.contains("fd_fed_fake 7"));
        assert!(text.contains("fd_cluster_peers 1"), "monitor families must survive");
        let (_, json) = http_get(exporter.local_addr(), "/metrics.json");
        assert!(json.contains(",\"federation\":{\"nodes\":4}}"), "{json}");
        assert!(json.starts_with("{\"now\":") && json.ends_with('}'));
        exporter.shutdown();
        m.shutdown();
    }

    #[test]
    fn unknown_paths_and_methods_are_rejected() {
        let m = monitor_with_peers(1);
        let exporter = MetricsExporter::bind("127.0.0.1:0", m.clone()).expect("bind");
        let (head, _) = http_get(exporter.local_addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let mut stream = TcpStream::connect(exporter.local_addr()).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.1 405"), "{buf}");
        exporter.shutdown();
        m.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_health() {
        let m = monitor_with_peers(1);
        let exporter = MetricsExporter::bind("127.0.0.1:0", m.clone()).expect("bind");
        assert_eq!(exporter.health(), Health::Healthy);
        exporter.shutdown();
        exporter.shutdown();
        assert_eq!(exporter.health(), Health::Stopped);
        assert!(TcpStream::connect_timeout(&exporter.local_addr(), STREAM_TIMEOUT).is_err()
            || http_try(exporter.local_addr()).is_none());
        m.shutdown();
    }

    /// Best-effort GET that tolerates a dead server.
    fn http_try(addr: SocketAddr) -> Option<String> {
        let mut stream = TcpStream::connect_timeout(&addr, STREAM_TIMEOUT).ok()?;
        write!(stream, "GET /metrics HTTP/1.1\r\n\r\n").ok()?;
        let mut buf = String::new();
        stream.set_read_timeout(Some(STREAM_TIMEOUT)).ok()?;
        stream.read_to_string(&mut buf).ok()?;
        if buf.is_empty() { None } else { Some(buf) }
    }
}
