//! Many-peer membership on top of the paper's NFD-E detector.
//!
//! The paper analyzes one monitor watching one process; `fd-runtime`'s
//! [`Service`](fd_runtime::Service) mirrors that shape with a thread per
//! watch, which stops scaling long before the ROADMAP's "heavy traffic"
//! regime. This crate is the membership layer that related work (Dobre et
//! al.'s robust detection architecture, Rossetto et al.'s Impact FD)
//! builds for that regime: **one node monitoring N peers with O(1)
//! threads**.
//!
//! Three pieces make that work:
//!
//! * a sharded [`PeerRegistry`](registry) — a fixed power-of-two number of
//!   `RwLock`-guarded shards, each holding per-peer NFD-E state (the §6.3
//!   freshness-point machine with its sliding-window arrival estimator),
//!   the current suspect/trust verdict and per-peer QoS counters, so
//!   heartbeat recording from many sockets/threads contends only
//!   per-shard;
//! * a hashed [`TimerWheel`](wheel::TimerWheel) — freshness-point
//!   expirations for *all* peers are bucketed into coarse time slots and
//!   driven by a single ticker thread, instead of one timer thread per
//!   peer;
//! * a batched [`wire`] protocol (v2, decoding v1) — many
//!   `(peer_id, incarnation, seq, send_ts)` heartbeat entries per
//!   datagram, multiplexed by [`ClusterSender`]/[`ClusterReceiver`] over
//!   a single UDP socket.
//!
//! PR 3 hardens the layer for the *crash-recovery* model: heartbeats
//! carry sender incarnations (stale lives are rejected, new lives reset
//! detector state), the monitor persists and restores a versioned
//! [`snapshot`] of per-peer estimator state for warm restarts, and both
//! the ticker and the receive pump run under panic supervision with
//! queryable [`Health`](fd_runtime::Health), bounded restarts and
//! overload shedding.
//!
//! The public façade is [`ClusterMonitor`]: `add_peer` / `remove_peer` /
//! `status` / `snapshot`, plus a bounded membership-event subscription
//! channel. A [`ClusterSnapshot`] implements
//! [`TrustView`](fd_runtime::TrustView), so
//! [`LeaderElector`](fd_runtime::LeaderElector) runs unchanged over a
//! cluster of numeric peer ids.
//!
//! Per-peer QoS is unchanged from the paper: each peer gets its own NFD-E
//! instance with its own `(η, α)`, so the detection-time bound
//! `T_D ≤ η + α (+ one wheel tick of scheduling slack)` holds peer by
//! peer no matter how many peers share the node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exporter;
pub mod monitor;
mod registry;
pub mod net;
pub mod snapshot;
pub mod wheel;
pub mod wire;

/// Identifier of a monitored peer, as carried on the wire.
pub type PeerId = u64;

pub use monitor::{
    ClusterConfig, ClusterError, ClusterMonitor, ClusterSnapshot, ClusterStats, MembershipChange,
    MembershipEvent, PeerConfig, PeerQos, PeerStatus,
};
pub use exporter::{render_json, render_prometheus, MetricsExporter};
pub use net::{ClusterReceiver, ClusterReceiverConfig, ClusterSender, ClusterSenderConfig};
pub use registry::PeerCounters;
pub use snapshot::{ClusterStateSnapshot, PeerRecord, SnapshotError};
pub use wire::{
    HeartbeatEntry, BATCH_MAGIC, BATCH_WIRE_VERSION, BATCH_WIRE_VERSION_V1, ENTRY_LEN,
    ENTRY_LEN_V1, HEADER_LEN, MAX_BATCH, MAX_BATCH_V1,
};
