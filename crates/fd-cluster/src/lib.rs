//! Many-peer membership on top of the paper's NFD-E detector.
//!
//! The paper analyzes one monitor watching one process; `fd-runtime`'s
//! [`Service`](fd_runtime::Service) mirrors that shape with a thread per
//! watch, which stops scaling long before the ROADMAP's "heavy traffic"
//! regime. This crate is the membership layer that related work (Dobre et
//! al.'s robust detection architecture, Rossetto et al.'s Impact FD)
//! builds for that regime: **one node monitoring N peers with O(1)
//! threads**.
//!
//! Three pieces make that work:
//!
//! * a sharded [`PeerRegistry`](registry) — a fixed power-of-two number of
//!   `RwLock`-guarded shards, each holding per-peer NFD-E state (the §6.3
//!   freshness-point machine with its sliding-window arrival estimator),
//!   the current suspect/trust verdict and per-peer QoS counters, so
//!   heartbeat recording from many sockets/threads contends only
//!   per-shard;
//! * a hashed [`TimerWheel`](wheel::TimerWheel) — freshness-point
//!   expirations for *all* peers are bucketed into coarse time slots and
//!   driven by a single ticker thread, instead of one timer thread per
//!   peer;
//! * a batched [`wire`] protocol (v4, decoding v1–v3) — many
//!   `(peer_id, incarnation, seq, send_ts)` heartbeat entries per
//!   datagram, multiplexed by [`ClusterSender`]/[`ClusterReceiver`] over
//!   a single UDP socket, plus v3 *control* frames carrying
//!   `(peer_id, η)` recommendations back toward the senders.
//!
//! PR 3 hardens the layer for the *crash-recovery* model: heartbeats
//! carry sender incarnations (stale lives are rejected, new lives reset
//! detector state), the monitor persists and restores a versioned
//! [`snapshot`] of per-peer estimator state for warm restarts, and both
//! the ticker and the receive pump run under panic supervision with
//! queryable [`Health`](fd_runtime::Health), bounded restarts and
//! overload shedding.
//!
//! PR 5 adds the **adaptive QoS control plane** (§8.1 of the paper at
//! cluster scale): peers registered with
//! [`PeerConfig::requirements`] get a per-peer short/long conservative
//! estimator pair (§8.1.2); a supervised control thread periodically
//! re-runs the §6.2 configurator against each peer's
//! `(T_D^U, T_MR^L, T_M^U)`, applies new `α` warm at the shard-locked
//! transition point, recommends sender-side `η` changes (drained via
//! [`ClusterMonitor::drain_eta_recommendations`], shipped by
//! [`ControlSender`], consumed by [`ControlListener`]), and — when the
//! requirements are infeasible under the current network estimate —
//! degrades the peer gracefully to best-effort parameters
//! ([`QosState::Degraded`], with `Degraded`/`Promoted` membership
//! events and hysteretic re-promotion).
//!
//! The public façade is [`ClusterMonitor`]: `add_peer` / `remove_peer` /
//! `status` / `snapshot`, plus a bounded membership-event subscription
//! channel. A [`ClusterSnapshot`] implements
//! [`TrustView`](fd_runtime::TrustView), so
//! [`LeaderElector`](fd_runtime::LeaderElector) runs unchanged over a
//! cluster of numeric peer ids.
//!
//! Per-peer QoS is unchanged from the paper: each peer gets its own NFD-E
//! instance with its own `(η, α)`, so the detection-time bound
//! `T_D ≤ η + α (+ one wheel tick of scheduling slack)` holds peer by
//! peer no matter how many peers share the node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod events;
pub mod exporter;
pub mod monitor;
mod registry;
pub mod net;
pub mod snapshot;
pub mod wheel;
pub mod wire;

/// Identifier of a monitored peer, as carried on the wire.
pub type PeerId = u64;

pub use monitor::{
    ClusterConfig, ClusterError, ClusterMonitor, ClusterSnapshot, ClusterStats, ControlConfig,
    MembershipChange, MembershipEvent, PeerConfig, PeerQos, PeerStatus,
};
pub use events::EventLog;
pub use exporter::{family, render_json, render_prometheus, MetricsExporter, MetricsSource};
pub use net::{
    ClusterReceiver, ClusterReceiverConfig, ClusterSender, ClusterSenderConfig, ControlListener,
    ControlListenerConfig, ControlSender,
};
pub use registry::{PeerCounters, QosState};
pub use snapshot::{
    ClusterStateSnapshot, ControlRecord, PeerRecord, SnapshotError, SnapshotOrigin,
};
pub use wire::{
    decode_batch, decode_frame, encode_digest, encode_relay, encode_repair, ControlEntry,
    DigestEntry, DigestFrame, DigestSummary, Frame, HeartbeatEntry, RelayedDigest, RepairRequest,
    BATCH_MAGIC, BATCH_WIRE_VERSION, BATCH_WIRE_VERSION_V1, BATCH_WIRE_VERSION_V3,
    BATCH_WIRE_VERSION_V4, CONTROL_ENTRY_LEN, DIGEST_ENTRY_LEN, ENTRY_LEN, ENTRY_LEN_V1,
    FRAME_KIND_DIGEST, FRAME_KIND_RELAY, FRAME_KIND_REPAIR, HEADER_LEN, HEADER_LEN_DIGEST,
    HEADER_LEN_V3, MAX_BATCH, MAX_BATCH_V1, MAX_CONTROL_BATCH, MAX_DIGEST_BATCH,
    RELAY_HEADER_LEN, REPAIR_FRAME_LEN,
};
