//! Batched heartbeat transport: many peers, one UDP socket each way.
//!
//! [`ClusterSender`] multiplexes heartbeats for any number of peers over
//! a single socket: callers `queue` entries and the sender packs up to
//! `max_batch` of them per datagram ([`wire`](crate::wire) format v2,
//! carrying each sender's incarnation), flushing automatically when a
//! batch fills and explicitly at period boundaries. [`ClusterReceiver`]
//! binds one socket, decodes batches (v2 and legacy v1) and feeds every
//! entry straight into a [`ClusterMonitor`](crate::ClusterMonitor).
//!
//! The receive pump is *supervised*: it runs under `catch_unwind`, so a
//! panic while handling one datagram degrades the queryable
//! [`pump_health`](ClusterReceiver::pump_health) and restarts the pump
//! (bounded by [`ClusterReceiverConfig::max_pump_restarts`]) instead of
//! silently killing reception — a dead receiver would suspect the whole
//! cluster. It also sheds load: with
//! [`ClusterReceiverConfig::max_entries_per_sec`] set, entries beyond
//! the budget in any one-second window are dropped and counted
//! ([`entries_shed`](ClusterReceiver::entries_shed), mirrored into
//! [`ClusterStats::entries_shed`](crate::ClusterStats::entries_shed))
//! rather than letting a heartbeat flood starve the monitor's shard
//! locks.
//!
//! Chaos testing reuses the PR-1 [`FaultPlan`]: the sender routes each
//! queued entry through the plan's [`FaultInjector`] (optionally only for
//! a designated subset of peers), so a scripted partition drops exactly
//! the targeted peers' heartbeats while the rest of the batch still goes
//! out — loss at the granularity the paper's model assumes (per message),
//! not per datagram. Injected *delays* are folded to immediate delivery
//! (batching is synchronous); loss, partitions and duplication apply
//! exactly.
//!
//! The adaptive control plane adds the reverse path:
//! [`ControlSender`] ships drained `η` recommendations as wire-v3
//! control frames toward the heartbeat *senders*, and a
//! [`ControlListener`] on the sender side decodes them into a callback
//! (typically [`Heartbeater::recommend_eta`](fd_runtime::Heartbeater)).
//! Control traffic is advisory and idempotent — a lost datagram just
//! means the next control round recommends again.

use crate::backoff;
use crate::wire::{
    decode_batch, decode_frame, encode_batch, encode_control, ControlEntry, Frame, HeartbeatEntry,
    MAX_BATCH, MAX_CONTROL_BATCH,
};
use crate::{ClusterMonitor, PeerId};
use fd_core::Heartbeat;
use fd_runtime::{Health, RuntimeError};
use fd_sim::{FaultInjector, FaultPlan};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sender-side configuration.
pub struct ClusterSenderConfig {
    /// Entries per datagram, clamped to `1..=`[`MAX_BATCH`].
    pub max_batch: usize,
    /// Scripted fault timeline applied per entry (time is the entry's
    /// `send_time`, i.e. the sender's cluster clock).
    pub fault_plan: Option<FaultPlan>,
    /// If set, the plan applies only to these peers — a partition of a
    /// subset of the cluster; everyone else's heartbeats flow untouched.
    /// `None` applies the plan to all peers.
    pub faulty_peers: Option<Vec<PeerId>>,
    /// RNG seed for the injection (XOR-folded with the plan's seed).
    pub seed: u64,
}

impl Default for ClusterSenderConfig {
    fn default() -> Self {
        Self {
            max_batch: MAX_BATCH,
            fault_plan: None,
            faulty_peers: None,
            seed: 0,
        }
    }
}

impl std::fmt::Debug for ClusterSenderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSenderConfig")
            .field("max_batch", &self.max_batch)
            .field("has_fault_plan", &self.fault_plan.is_some())
            .field("faulty_peers", &self.faulty_peers)
            .finish()
    }
}

/// Sends batched heartbeats for many peers over one UDP socket.
pub struct ClusterSender {
    socket: UdpSocket,
    max_batch: usize,
    injector: Option<FaultInjector>,
    faulty: Option<HashSet<PeerId>>,
    rng: StdRng,
    pending: Vec<HeartbeatEntry>,
    datagrams_sent: u64,
    entries_sent: u64,
}

impl std::fmt::Debug for ClusterSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSender")
            .field("max_batch", &self.max_batch)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl ClusterSender {
    /// Binds an ephemeral local socket and connects it to the receiver.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors.
    pub fn connect(receiver: SocketAddr, cfg: ClusterSenderConfig) -> Result<Self, RuntimeError> {
        let bind_ip: IpAddr = match receiver {
            SocketAddr::V4(_) => Ipv4Addr::UNSPECIFIED.into(),
            SocketAddr::V6(_) => Ipv6Addr::UNSPECIFIED.into(),
        };
        let socket = UdpSocket::bind((bind_ip, 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        socket
            .connect(receiver)
            .map_err(|e| RuntimeError::Net { op: "connect", source: e })?;
        let mut seed = cfg.seed;
        let injector = cfg.fault_plan.as_ref().map(|p| {
            seed ^= p.seed();
            p.injector()
        });
        Ok(Self {
            socket,
            max_batch: cfg.max_batch.clamp(1, MAX_BATCH),
            injector,
            faulty: cfg.faulty_peers.map(|v| v.into_iter().collect()),
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            datagrams_sent: 0,
            entries_sent: 0,
        })
    }

    /// Queues one heartbeat at incarnation 0 (a sender that never
    /// persists an incarnation — the crash-stop model). Flushes
    /// automatically once a full batch is pending; call
    /// [`flush`](Self::flush) after queueing a round so the tail does
    /// not sit until the next round.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from an automatic flush.
    pub fn queue(&mut self, peer: PeerId, seq: u64, send_time: f64) -> io::Result<()> {
        self.queue_incarnated(peer, 0, seq, send_time)
    }

    /// Queues one heartbeat carrying the sender's incarnation (from its
    /// [`IncarnationStore`](fd_runtime::IncarnationStore)-backed
    /// [`Heartbeater`](fd_runtime::Heartbeater), so a restarted sender's
    /// traffic supersedes its previous life's).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from an automatic flush.
    pub fn queue_incarnated(
        &mut self,
        peer: PeerId,
        incarnation: u64,
        seq: u64,
        send_time: f64,
    ) -> io::Result<()> {
        self.pending.push(HeartbeatEntry { peer, incarnation, seq, send_time });
        if self.pending.len() >= self.max_batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends everything pending, packed `max_batch` entries per datagram
    /// (after per-entry fault injection). Returns the number of datagrams
    /// handed to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; undelivered entries stay pending.
    pub fn flush(&mut self) -> io::Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        // Per-entry injection: each heartbeat suffers its own fate, as in
        // the paper's per-message loss model. out.len() ∈ {0, 1, 2}:
        // dropped, delivered, duplicated.
        let mut surviving = Vec::with_capacity(self.pending.len());
        let mut fates = Vec::with_capacity(2);
        for entry in self.pending.drain(..) {
            let targeted =
                self.faulty.as_ref().is_none_or(|set| set.contains(&entry.peer));
            match (&mut self.injector, targeted) {
                (Some(inj), true) => {
                    fates.clear();
                    inj.apply(entry.send_time, Some(0.0), &mut self.rng, &mut fates);
                    for _ in 0..fates.len() {
                        surviving.push(entry);
                    }
                }
                _ => surviving.push(entry),
            }
        }
        let mut datagrams = 0;
        let mut sent_entries = 0;
        let mut err = None;
        for chunk in surviving.chunks(self.max_batch) {
            match self.socket.send(&encode_batch(chunk)) {
                Ok(_) => {
                    datagrams += 1;
                    sent_entries += chunk.len() as u64;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        self.datagrams_sent += datagrams as u64;
        self.entries_sent += sent_entries;
        match err {
            Some(e) => Err(e),
            None => Ok(datagrams),
        }
    }

    /// Datagrams handed to the socket since connect.
    pub fn datagrams_sent(&self) -> u64 {
        self.datagrams_sent
    }

    /// Heartbeat entries handed to the socket since connect (post
    /// injection: drops excluded, duplicates included).
    pub fn entries_sent(&self) -> u64 {
        self.entries_sent
    }

    /// Mean entries per datagram so far — the batching win over the
    /// one-datagram-per-heartbeat single-watch transport.
    pub fn batching_factor(&self) -> f64 {
        if self.datagrams_sent == 0 {
            0.0
        } else {
            self.entries_sent as f64 / self.datagrams_sent as f64
        }
    }
}

/// Receiver-side configuration.
#[derive(Debug, Clone)]
pub struct ClusterReceiverConfig {
    /// How many times a panicking pump is restarted before the receiver
    /// gives up (reported as [`Health::Stopped`]).
    pub max_pump_restarts: u64,
    /// Overload budget: at most this many heartbeat entries are recorded
    /// per one-second window; the excess is shed (counted, never
    /// blocking). `None` disables shedding.
    pub max_entries_per_sec: Option<u64>,
}

impl Default for ClusterReceiverConfig {
    fn default() -> Self {
        Self { max_pump_restarts: 8, max_entries_per_sec: None }
    }
}

/// Sentinel datagram that tells the pump thread to exit; honored only
/// from this receiver's own shutdown socket (same spoofing defence as
/// the single-watch receiver).
const SHUTDOWN_SENTINEL: [u8; 4] = *b"BYE!";

/// Counters and supervision state for the receive pump.
struct RxShared {
    datagrams: AtomicU64,
    entries: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    restarts: AtomicU64,
    inject_panic: AtomicBool,
    health: Mutex<Health>,
}

impl Default for RxShared {
    fn default() -> Self {
        Self {
            datagrams: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            inject_panic: AtomicBool::new(false),
            health: Mutex::new(Health::Healthy),
        }
    }
}

/// Receives batched heartbeats on one UDP socket and feeds them into a
/// [`ClusterMonitor`].
pub struct ClusterReceiver {
    addr: SocketAddr,
    shutdown: UdpSocket,
    shared: Arc<RxShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterReceiver").field("addr", &self.addr).finish()
    }
}

impl ClusterReceiver {
    /// Binds `addr` (e.g. `127.0.0.1:0`) with the default receiver
    /// configuration and starts a supervised pump thread that records
    /// every decoded entry into `monitor` at arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind(addr: SocketAddr, monitor: ClusterMonitor) -> Result<Self, RuntimeError> {
        Self::bind_with(addr, monitor, ClusterReceiverConfig::default())
    }

    /// [`bind`](Self::bind) with explicit supervision/shedding settings.
    ///
    /// # Errors
    ///
    /// Same as [`bind`](Self::bind).
    pub fn bind_with(
        addr: SocketAddr,
        monitor: ClusterMonitor,
        cfg: ClusterReceiverConfig,
    ) -> Result<Self, RuntimeError> {
        let socket = UdpSocket::bind(addr).map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let addr = socket
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let shutdown = UdpSocket::bind((loopback_ip(&addr), 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let shutdown_addr = shutdown
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let shared = Arc::new(RxShared::default());
        let pump_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("fd-cluster-recv".into())
            .spawn(move || supervised_pump(socket, monitor, shutdown_addr, pump_shared, cfg))
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-recv", source: e })?;
        Ok(Self { addr, shutdown, shared, handle: Some(handle) })
    }

    /// The bound address senders should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Well-formed batch datagrams received.
    pub fn datagrams_received(&self) -> u64 {
        self.shared.datagrams.load(Ordering::Relaxed)
    }

    /// Heartbeat entries recorded into the monitor.
    pub fn entries_received(&self) -> u64 {
        self.shared.entries.load(Ordering::Relaxed)
    }

    /// Datagrams rejected as malformed or foreign.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Entries dropped by overload shedding.
    pub fn entries_shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Times the panicking pump was restarted by its supervisor.
    pub fn pump_restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// Health of the supervised pump thread: `Healthy` until its first
    /// panic, `Degraded` while the restart budget lasts, `Stopped` after
    /// shutdown or budget exhaustion.
    pub fn pump_health(&self) -> Health {
        self.shared.health.lock().clone()
    }

    /// Fault-injection hook: makes the pump panic on the next datagram
    /// it handles. The supervisor must catch it and keep receiving. For
    /// chaos tests; never called on production paths.
    pub fn inject_pump_panic(&self) {
        self.shared.inject_panic.store(true, Ordering::Relaxed);
    }

    /// Stops the pump thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(loopback_ip(&target));
            }
            let _ = self.shutdown.send_to(&SHUTDOWN_SENTINEL, target);
            let _ = handle.join();
            *self.shared.health.lock() = Health::Stopped;
        }
    }
}

impl Drop for ClusterReceiver {
    fn drop(&mut self) {
        self.stop();
    }
}

fn loopback_ip(addr: &SocketAddr) -> IpAddr {
    match addr {
        SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
        SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
    }
}

/// Per-second token budget for overload shedding.
struct EntryBudget {
    limit: u64,
    window_start: Instant,
    used: u64,
}

impl EntryBudget {
    fn new(limit: u64) -> Self {
        Self { limit, window_start: Instant::now(), used: 0 }
    }

    /// How many of `want` entries fit in the current window.
    fn admit(&mut self, want: u64) -> u64 {
        if self.window_start.elapsed().as_secs_f64() >= 1.0 {
            self.window_start = Instant::now();
            self.used = 0;
        }
        let granted = want.min(self.limit.saturating_sub(self.used));
        self.used += granted;
        granted
    }
}

/// Runs the pump under `catch_unwind`, restarting on panic with the
/// configured budget (mirrors the cluster ticker's supervision).
fn supervised_pump(
    socket: UdpSocket,
    monitor: ClusterMonitor,
    shutdown_addr: SocketAddr,
    shared: Arc<RxShared>,
    cfg: ClusterReceiverConfig,
) {
    let mut budget = cfg.max_entries_per_sec.map(EntryBudget::new);
    let mut rng = StdRng::from_os_rng();
    let mut restarts: u64 = 0;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            pump(&socket, &monitor, shutdown_addr, &shared, &mut budget)
        }));
        match outcome {
            Ok(()) => {
                *shared.health.lock() = Health::Stopped;
                return;
            }
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                restarts += 1;
                shared.restarts.fetch_add(1, Ordering::Relaxed);
                if restarts > cfg.max_pump_restarts {
                    *shared.health.lock() = Health::Stopped;
                    return;
                }
                *shared.health.lock() = Health::Degraded { reason };
                // Brief jittered backoff before resuming. The socket
                // buffers while we are away and the datagram that
                // tripped the panic has already been consumed, so a
                // short pause costs little — and if the panic is
                // persistent (poisoned input replayed by a sender), it
                // keeps many receivers from restart-spinning in
                // lock-step.
                std::thread::sleep(backoff::restart_delay(
                    &mut rng,
                    restarts,
                    Duration::from_millis(2),
                    Duration::from_millis(50),
                ));
            }
        }
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn pump(
    socket: &UdpSocket,
    monitor: &ClusterMonitor,
    shutdown_addr: SocketAddr,
    shared: &RxShared,
    budget: &mut Option<EntryBudget>,
) {
    let mut buf = [0u8; 2048];
    loop {
        let (n, src) = match socket.recv_from(&mut buf) {
            Ok(r) => r,
            Err(_) => return,
        };
        if n == SHUTDOWN_SENTINEL.len() && buf[..n] == SHUTDOWN_SENTINEL && src == shutdown_addr {
            return;
        }
        if shared.inject_panic.swap(false, Ordering::Relaxed) {
            panic!("injected pump panic");
        }
        match decode_batch(&buf[..n]) {
            Some(entries) => {
                shared.datagrams.fetch_add(1, Ordering::Relaxed);
                let admitted = match budget {
                    Some(b) => b.admit(entries.len() as u64) as usize,
                    None => entries.len(),
                };
                let dropped = entries.len() - admitted;
                if dropped > 0 {
                    shared.shed.fetch_add(dropped as u64, Ordering::Relaxed);
                    monitor.note_entries_shed(dropped as u64);
                }
                shared.entries.fetch_add(admitted as u64, Ordering::Relaxed);
                for e in &entries[..admitted] {
                    monitor.record_incarnated(e.peer, e.incarnation, Heartbeat::new(e.seq, e.send_time));
                }
            }
            None => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Ships `η` recommendations (as drained from
/// [`ClusterMonitor::drain_eta_recommendations`](crate::ClusterMonitor::drain_eta_recommendations))
/// toward the heartbeat senders as wire-v3 control frames, chunked by
/// [`MAX_CONTROL_BATCH`].
pub struct ControlSender {
    socket: UdpSocket,
    datagrams_sent: u64,
    entries_sent: u64,
}

impl std::fmt::Debug for ControlSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlSender")
            .field("datagrams_sent", &self.datagrams_sent)
            .finish()
    }
}

impl ControlSender {
    /// Binds an ephemeral local socket and connects it to the
    /// listener's address.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors.
    pub fn connect(listener: SocketAddr) -> Result<Self, RuntimeError> {
        let bind_ip: IpAddr = match listener {
            SocketAddr::V4(_) => Ipv4Addr::UNSPECIFIED.into(),
            SocketAddr::V6(_) => Ipv6Addr::UNSPECIFIED.into(),
        };
        let socket = UdpSocket::bind((bind_ip, 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        socket
            .connect(listener)
            .map_err(|e| RuntimeError::Net { op: "connect", source: e })?;
        Ok(Self { socket, datagrams_sent: 0, entries_sent: 0 })
    }

    /// Sends the recommendations, packed [`MAX_CONTROL_BATCH`] per
    /// datagram. Entries with a non-finite or non-positive `η` are
    /// skipped (they could never be applied). Returns the number of
    /// datagrams handed to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; control traffic is advisory, so the
    /// caller may simply retry at the next control round.
    pub fn send(&mut self, recommendations: &[(PeerId, f64)]) -> io::Result<usize> {
        let entries: Vec<ControlEntry> = recommendations
            .iter()
            .filter(|(_, eta)| eta.is_finite() && *eta > 0.0)
            .map(|&(peer, eta)| ControlEntry { peer, eta })
            .collect();
        let mut datagrams = 0;
        for chunk in entries.chunks(MAX_CONTROL_BATCH) {
            self.socket.send(&encode_control(chunk))?;
            datagrams += 1;
            self.entries_sent += chunk.len() as u64;
        }
        self.datagrams_sent += datagrams as u64;
        Ok(datagrams)
    }

    /// Datagrams handed to the socket since connect.
    pub fn datagrams_sent(&self) -> u64 {
        self.datagrams_sent
    }

    /// Control entries handed to the socket since connect.
    pub fn entries_sent(&self) -> u64 {
        self.entries_sent
    }
}

/// Listener-side configuration.
#[derive(Debug, Clone)]
pub struct ControlListenerConfig {
    /// How many times a panicking pump is restarted before the listener
    /// gives up (reported as [`Health::Stopped`]).
    pub max_pump_restarts: u64,
}

impl Default for ControlListenerConfig {
    fn default() -> Self {
        Self { max_pump_restarts: 8 }
    }
}

/// Counters and supervision state for the control pump.
struct CtlShared {
    datagrams: AtomicU64,
    entries: AtomicU64,
    rejected: AtomicU64,
    ignored: AtomicU64,
    restarts: AtomicU64,
    inject_panic: AtomicBool,
    health: Mutex<Health>,
}

impl Default for CtlShared {
    fn default() -> Self {
        Self {
            datagrams: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            ignored: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            inject_panic: AtomicBool::new(false),
            health: Mutex::new(Health::Healthy),
        }
    }
}

/// Receives wire-v3 control frames on the heartbeat-sender side and
/// hands each `(peer, η)` recommendation to a callback — typically one
/// that calls
/// [`Heartbeater::recommend_eta`](fd_runtime::Heartbeater::recommend_eta)
/// on the matching sender. Supervised like [`ClusterReceiver`]'s pump.
pub struct ControlListener {
    addr: SocketAddr,
    shutdown: UdpSocket,
    shared: Arc<CtlShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ControlListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlListener").field("addr", &self.addr).finish()
    }
}

impl ControlListener {
    /// Binds `addr` with the default configuration and starts the
    /// supervised pump, delivering every decoded recommendation to
    /// `on_recommendation`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind(
        addr: SocketAddr,
        on_recommendation: Arc<dyn Fn(PeerId, f64) + Send + Sync>,
    ) -> Result<Self, RuntimeError> {
        Self::bind_with(addr, on_recommendation, ControlListenerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit supervision settings.
    ///
    /// # Errors
    ///
    /// Same as [`bind`](Self::bind).
    pub fn bind_with(
        addr: SocketAddr,
        on_recommendation: Arc<dyn Fn(PeerId, f64) + Send + Sync>,
        cfg: ControlListenerConfig,
    ) -> Result<Self, RuntimeError> {
        let socket = UdpSocket::bind(addr).map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let addr = socket
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let shutdown = UdpSocket::bind((loopback_ip(&addr), 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let shutdown_addr = shutdown
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let shared = Arc::new(CtlShared::default());
        let pump_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("fd-cluster-control-rx".into())
            .spawn(move || {
                supervised_control_pump(socket, on_recommendation, shutdown_addr, pump_shared, cfg)
            })
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-control-rx", source: e })?;
        Ok(Self { addr, shutdown, shared, handle: Some(handle) })
    }

    /// The bound address control senders should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Well-formed control datagrams received.
    pub fn datagrams_received(&self) -> u64 {
        self.shared.datagrams.load(Ordering::Relaxed)
    }

    /// Recommendations delivered to the callback.
    pub fn entries_received(&self) -> u64 {
        self.shared.entries.load(Ordering::Relaxed)
    }

    /// Datagrams rejected as malformed.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// Well-formed datagrams of the wrong kind (heartbeat frames sent
    /// to the control port) — decoded, counted, and dropped.
    pub fn ignored(&self) -> u64 {
        self.shared.ignored.load(Ordering::Relaxed)
    }

    /// Times the panicking pump was restarted by its supervisor.
    pub fn pump_restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// Health of the supervised pump thread.
    pub fn pump_health(&self) -> Health {
        self.shared.health.lock().clone()
    }

    /// Fault-injection hook: makes the pump panic on the next datagram.
    /// For chaos tests; never called on production paths.
    pub fn inject_pump_panic(&self) {
        self.shared.inject_panic.store(true, Ordering::Relaxed);
    }

    /// Stops the pump thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(loopback_ip(&target));
            }
            let _ = self.shutdown.send_to(&SHUTDOWN_SENTINEL, target);
            let _ = handle.join();
            *self.shared.health.lock() = Health::Stopped;
        }
    }
}

impl Drop for ControlListener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Supervision wrapper for the control pump (same protocol as
/// [`supervised_pump`]).
fn supervised_control_pump(
    socket: UdpSocket,
    on_recommendation: Arc<dyn Fn(PeerId, f64) + Send + Sync>,
    shutdown_addr: SocketAddr,
    shared: Arc<CtlShared>,
    cfg: ControlListenerConfig,
) {
    let mut rng = StdRng::from_os_rng();
    let mut restarts: u64 = 0;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            control_pump(&socket, &on_recommendation, shutdown_addr, &shared)
        }));
        match outcome {
            Ok(()) => {
                *shared.health.lock() = Health::Stopped;
                return;
            }
            Err(payload) => {
                let reason = panic_reason(payload.as_ref());
                restarts += 1;
                shared.restarts.fetch_add(1, Ordering::Relaxed);
                if restarts > cfg.max_pump_restarts {
                    *shared.health.lock() = Health::Stopped;
                    return;
                }
                *shared.health.lock() = Health::Degraded { reason };
                std::thread::sleep(backoff::restart_delay(
                    &mut rng,
                    restarts,
                    Duration::from_millis(2),
                    Duration::from_millis(50),
                ));
            }
        }
    }
}

fn control_pump(
    socket: &UdpSocket,
    on_recommendation: &Arc<dyn Fn(PeerId, f64) + Send + Sync>,
    shutdown_addr: SocketAddr,
    shared: &CtlShared,
) {
    let mut buf = [0u8; 2048];
    loop {
        let (n, src) = match socket.recv_from(&mut buf) {
            Ok(r) => r,
            Err(_) => return,
        };
        if n == SHUTDOWN_SENTINEL.len() && buf[..n] == SHUTDOWN_SENTINEL && src == shutdown_addr {
            return;
        }
        if shared.inject_panic.swap(false, Ordering::Relaxed) {
            panic!("injected control pump panic");
        }
        match decode_frame(&buf[..n]) {
            Some(Frame::Control(entries)) => {
                shared.datagrams.fetch_add(1, Ordering::Relaxed);
                shared.entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
                for e in &entries {
                    on_recommendation(e.peer, e.eta);
                }
            }
            Some(
                Frame::Heartbeats(_) | Frame::Digest(_) | Frame::Repair(_) | Frame::Relayed(_),
            ) => {
                // Well-formed but misdirected: someone aimed heartbeat
                // or federation gossip traffic at the control port.
                // Count and drop.
                shared.ignored.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                shared.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_batch_v1;
    use crate::{ClusterConfig, PeerConfig};

    fn loop_addr() -> SocketAddr {
        SocketAddr::from((Ipv4Addr::LOCALHOST, 0))
    }

    #[test]
    fn batched_flow_end_to_end() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        for p in 0..16u64 {
            monitor.add_peer(p, PeerConfig::new(0.02, 0.06)).unwrap();
        }
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");

        for round in 1..=6u64 {
            let t = monitor.now();
            for p in 0..16u64 {
                tx.queue(p, round, t).unwrap();
            }
            tx.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }

        // 16 entries per round fit one datagram: full multiplexing.
        assert_eq!(tx.datagrams_sent(), 6);
        assert!((tx.batching_factor() - 16.0).abs() < 1e-9);

        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_received() < 96 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.datagrams_received(), 6);
        assert_eq!(rx.entries_received(), 96);
        assert_eq!(rx.rejected(), 0);
        assert_eq!(rx.entries_shed(), 0);
        let snap = monitor.snapshot();
        assert_eq!(snap.trusted().len(), 16, "all peers trusted: {snap:?}");
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn rejects_foreign_datagrams() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let sock = UdpSocket::bind(loop_addr()).unwrap();
        // A single-heartbeat datagram (different magic) and plain noise.
        sock.send_to(&fd_runtime::udp::encode_heartbeat(Heartbeat::new(1, 0.5)), rx.local_addr())
            .unwrap();
        sock.send_to(b"not a heartbeat", rx.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.rejected() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.rejected(), 2);
        assert_eq!(rx.datagrams_received(), 0);
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn oversize_rounds_split_into_full_batches() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");
        for p in 0..150u64 {
            tx.queue(p, 1, 0.01).unwrap();
        }
        tx.flush().unwrap();
        // 150 = 45 + 45 + 45 + 15: three auto-flushed full v2 batches
        // plus the tail.
        assert_eq!(tx.datagrams_sent(), 4);
        assert_eq!(tx.entries_sent(), 150);
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn v1_frames_feed_the_monitor_as_incarnation_zero() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        monitor.add_peer(3, PeerConfig::new(0.02, 0.06)).unwrap();
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let sock = UdpSocket::bind(loop_addr()).unwrap();
        // An un-upgraded sender: legacy v1 framing, no incarnation field.
        let t = monitor.now();
        let frame = encode_batch_v1(&[HeartbeatEntry { peer: 3, incarnation: 0, seq: 1, send_time: t }]);
        sock.send_to(&frame, rx.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_received() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.entries_received(), 1);
        assert_eq!(rx.rejected(), 0);
        let st = monitor.status(3).unwrap();
        assert!(st.output.is_trust(), "v1 heartbeat accepted");
        assert_eq!(st.incarnation, 0);
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn incarnation_travels_the_wire() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        monitor.add_peer(8, PeerConfig::new(0.02, 0.06)).unwrap();
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");
        tx.queue_incarnated(8, 4, 1, monitor.now()).unwrap();
        tx.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_received() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(monitor.status(8).unwrap().incarnation, 4);
        // A previous-life entry (lower incarnation) is rejected by the
        // monitor — full path: wire → decode → record_incarnated.
        tx.queue_incarnated(8, 3, 99, monitor.now()).unwrap();
        tx.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while monitor.stats().stale_incarnation_rejects < 1
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(monitor.stats().stale_incarnation_rejects, 1);
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn pump_panic_degrades_health_and_keeps_receiving() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        monitor.add_peer(1, PeerConfig::new(0.02, 0.06)).unwrap();
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");
        assert_eq!(rx.pump_health(), Health::Healthy);

        rx.inject_pump_panic();
        tx.queue(1, 1, monitor.now()).unwrap();
        tx.flush().unwrap(); // this datagram trips the injected panic
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.pump_restarts() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.pump_restarts(), 1);
        assert!(matches!(rx.pump_health(), Health::Degraded { .. }));

        // The restarted pump still records heartbeats.
        tx.queue(1, 2, monitor.now()).unwrap();
        tx.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_received() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(monitor.status(1).unwrap().output.is_trust());
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn overload_sheds_entries_beyond_budget() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        for p in 0..32u64 {
            monitor.add_peer(p, PeerConfig::new(0.5, 1.0)).unwrap();
        }
        let rx = ClusterReceiver::bind_with(
            loop_addr(),
            monitor.clone(),
            ClusterReceiverConfig { max_entries_per_sec: Some(10), ..Default::default() },
        )
        .expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");
        // One burst of 32 entries against a 10-entry budget.
        let t = monitor.now();
        for p in 0..32u64 {
            tx.queue(p, 1, t).unwrap();
        }
        tx.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_shed() < 22 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.entries_received(), 10);
        assert_eq!(rx.entries_shed(), 22);
        assert_eq!(monitor.stats().entries_shed, 22, "shed count surfaces in ClusterStats");
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn control_round_trip_delivers_recommendations() {
        let got: Arc<Mutex<Vec<(PeerId, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let listener = ControlListener::bind(
            loop_addr(),
            Arc::new(move |peer, eta| sink.lock().push((peer, eta))),
        )
        .expect("bind");
        let mut tx = ControlSender::connect(listener.local_addr()).expect("connect");

        // Garbage η is filtered sender-side — it could never be applied.
        let sent = tx
            .send(&[(4, 0.125), (0, f64::NAN), (9, 2.5), (2, -1.0), (7, 0.0)])
            .expect("send");
        assert_eq!(sent, 1, "two valid entries fit one datagram");
        assert_eq!(tx.entries_sent(), 2);

        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while listener.entries_received() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(listener.datagrams_received(), 1);
        assert_eq!(listener.entries_received(), 2);
        assert_eq!(*got.lock(), vec![(4, 0.125), (9, 2.5)]);

        // Oversize rounds chunk by MAX_CONTROL_BATCH.
        let many: Vec<(PeerId, f64)> =
            (0..120u64).map(|p| (p, 0.5 + p as f64 * 1e-3)).collect();
        assert_eq!(tx.send(&many).expect("send"), 2, "120 = 91 + 29 entries");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while listener.entries_received() < 122 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(listener.entries_received(), 122);
        assert_eq!(listener.rejected(), 0);
        listener.shutdown();
    }

    #[test]
    fn control_listener_ignores_misdirected_and_rejects_noise() {
        let listener =
            ControlListener::bind(loop_addr(), Arc::new(|_, _| panic!("no delivery expected")))
                .expect("bind");
        let sock = UdpSocket::bind(loop_addr()).unwrap();
        // A well-formed heartbeat frame aimed at the control port is
        // decoded, counted as ignored, and dropped; noise is rejected.
        let frame = encode_batch_v1(&[HeartbeatEntry {
            peer: 3,
            incarnation: 0,
            seq: 1,
            send_time: 0.5,
        }]);
        sock.send_to(&frame, listener.local_addr()).unwrap();
        sock.send_to(b"not a control frame", listener.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while (listener.ignored() < 1 || listener.rejected() < 1)
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(listener.ignored(), 1);
        assert_eq!(listener.rejected(), 1);
        assert_eq!(listener.entries_received(), 0);
        listener.shutdown();
    }

    #[test]
    fn control_pump_panic_degrades_and_recovers() {
        let got: Arc<Mutex<Vec<(PeerId, f64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let listener = ControlListener::bind(
            loop_addr(),
            Arc::new(move |peer, eta| sink.lock().push((peer, eta))),
        )
        .expect("bind");
        let mut tx = ControlSender::connect(listener.local_addr()).expect("connect");
        assert_eq!(listener.pump_health(), Health::Healthy);

        listener.inject_pump_panic();
        tx.send(&[(1, 1.0)]).expect("send"); // trips the injected panic
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while listener.pump_restarts() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(listener.pump_restarts(), 1);
        assert!(matches!(listener.pump_health(), Health::Degraded { .. }));

        // The restarted pump still delivers.
        tx.send(&[(1, 2.0)]).expect("send");
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while got.lock().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(*got.lock(), vec![(1, 2.0)]);
        listener.shutdown();
    }
}
