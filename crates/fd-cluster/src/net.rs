//! Batched heartbeat transport: many peers, one UDP socket each way.
//!
//! [`ClusterSender`] multiplexes heartbeats for any number of peers over
//! a single socket: callers `queue` entries and the sender packs up to
//! `max_batch` of them per datagram ([`wire`](crate::wire) format v1),
//! flushing automatically when a batch fills and explicitly at
//! period boundaries. [`ClusterReceiver`] binds one socket, decodes
//! batches and feeds every entry straight into a
//! [`ClusterMonitor`](crate::ClusterMonitor).
//!
//! Chaos testing reuses the PR-1 [`FaultPlan`]: the sender routes each
//! queued entry through the plan's [`FaultInjector`] (optionally only for
//! a designated subset of peers), so a scripted partition drops exactly
//! the targeted peers' heartbeats while the rest of the batch still goes
//! out — loss at the granularity the paper's model assumes (per message),
//! not per datagram. Injected *delays* are folded to immediate delivery
//! (batching is synchronous); loss, partitions and duplication apply
//! exactly.

use crate::wire::{decode_batch, encode_batch, HeartbeatEntry, MAX_BATCH};
use crate::{ClusterMonitor, PeerId};
use fd_core::Heartbeat;
use fd_runtime::RuntimeError;
use fd_sim::{FaultInjector, FaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::io;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sender-side configuration.
pub struct ClusterSenderConfig {
    /// Entries per datagram, clamped to `1..=`[`MAX_BATCH`].
    pub max_batch: usize,
    /// Scripted fault timeline applied per entry (time is the entry's
    /// `send_time`, i.e. the sender's cluster clock).
    pub fault_plan: Option<FaultPlan>,
    /// If set, the plan applies only to these peers — a partition of a
    /// subset of the cluster; everyone else's heartbeats flow untouched.
    /// `None` applies the plan to all peers.
    pub faulty_peers: Option<Vec<PeerId>>,
    /// RNG seed for the injection (XOR-folded with the plan's seed).
    pub seed: u64,
}

impl Default for ClusterSenderConfig {
    fn default() -> Self {
        Self {
            max_batch: MAX_BATCH,
            fault_plan: None,
            faulty_peers: None,
            seed: 0,
        }
    }
}

impl std::fmt::Debug for ClusterSenderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSenderConfig")
            .field("max_batch", &self.max_batch)
            .field("has_fault_plan", &self.fault_plan.is_some())
            .field("faulty_peers", &self.faulty_peers)
            .finish()
    }
}

/// Sends batched heartbeats for many peers over one UDP socket.
pub struct ClusterSender {
    socket: UdpSocket,
    max_batch: usize,
    injector: Option<FaultInjector>,
    faulty: Option<HashSet<PeerId>>,
    rng: StdRng,
    pending: Vec<HeartbeatEntry>,
    datagrams_sent: u64,
    entries_sent: u64,
}

impl std::fmt::Debug for ClusterSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSender")
            .field("max_batch", &self.max_batch)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl ClusterSender {
    /// Binds an ephemeral local socket and connects it to the receiver.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors.
    pub fn connect(receiver: SocketAddr, cfg: ClusterSenderConfig) -> Result<Self, RuntimeError> {
        let bind_ip: IpAddr = match receiver {
            SocketAddr::V4(_) => Ipv4Addr::UNSPECIFIED.into(),
            SocketAddr::V6(_) => Ipv6Addr::UNSPECIFIED.into(),
        };
        let socket = UdpSocket::bind((bind_ip, 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        socket
            .connect(receiver)
            .map_err(|e| RuntimeError::Net { op: "connect", source: e })?;
        let mut seed = cfg.seed;
        let injector = cfg.fault_plan.as_ref().map(|p| {
            seed ^= p.seed();
            p.injector()
        });
        Ok(Self {
            socket,
            max_batch: cfg.max_batch.clamp(1, MAX_BATCH),
            injector,
            faulty: cfg.faulty_peers.map(|v| v.into_iter().collect()),
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            datagrams_sent: 0,
            entries_sent: 0,
        })
    }

    /// Queues one heartbeat, flushing automatically once a full batch is
    /// pending. Call [`flush`](Self::flush) after queueing a round so the
    /// tail does not sit until the next round.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from an automatic flush.
    pub fn queue(&mut self, peer: PeerId, seq: u64, send_time: f64) -> io::Result<()> {
        self.pending.push(HeartbeatEntry { peer, seq, send_time });
        if self.pending.len() >= self.max_batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Sends everything pending, packed `max_batch` entries per datagram
    /// (after per-entry fault injection). Returns the number of datagrams
    /// handed to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; undelivered entries stay pending.
    pub fn flush(&mut self) -> io::Result<usize> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        // Per-entry injection: each heartbeat suffers its own fate, as in
        // the paper's per-message loss model. out.len() ∈ {0, 1, 2}:
        // dropped, delivered, duplicated.
        let mut surviving = Vec::with_capacity(self.pending.len());
        let mut fates = Vec::with_capacity(2);
        for entry in self.pending.drain(..) {
            let targeted =
                self.faulty.as_ref().is_none_or(|set| set.contains(&entry.peer));
            match (&mut self.injector, targeted) {
                (Some(inj), true) => {
                    fates.clear();
                    inj.apply(entry.send_time, Some(0.0), &mut self.rng, &mut fates);
                    for _ in 0..fates.len() {
                        surviving.push(entry);
                    }
                }
                _ => surviving.push(entry),
            }
        }
        let mut datagrams = 0;
        let mut sent_entries = 0;
        let mut err = None;
        for chunk in surviving.chunks(self.max_batch) {
            match self.socket.send(&encode_batch(chunk)) {
                Ok(_) => {
                    datagrams += 1;
                    sent_entries += chunk.len() as u64;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        self.datagrams_sent += datagrams as u64;
        self.entries_sent += sent_entries;
        match err {
            Some(e) => Err(e),
            None => Ok(datagrams),
        }
    }

    /// Datagrams handed to the socket since connect.
    pub fn datagrams_sent(&self) -> u64 {
        self.datagrams_sent
    }

    /// Heartbeat entries handed to the socket since connect (post
    /// injection: drops excluded, duplicates included).
    pub fn entries_sent(&self) -> u64 {
        self.entries_sent
    }

    /// Mean entries per datagram so far — the batching win over the
    /// one-datagram-per-heartbeat single-watch transport.
    pub fn batching_factor(&self) -> f64 {
        if self.datagrams_sent == 0 {
            0.0
        } else {
            self.entries_sent as f64 / self.datagrams_sent as f64
        }
    }
}

/// Sentinel datagram that tells the pump thread to exit; honored only
/// from this receiver's own shutdown socket (same spoofing defence as
/// the single-watch receiver).
const SHUTDOWN_SENTINEL: [u8; 4] = *b"BYE!";

/// Counters for the receive pump.
#[derive(Debug, Default)]
struct RxStats {
    datagrams: AtomicU64,
    entries: AtomicU64,
    rejected: AtomicU64,
}

/// Receives batched heartbeats on one UDP socket and feeds them into a
/// [`ClusterMonitor`].
pub struct ClusterReceiver {
    addr: SocketAddr,
    shutdown: UdpSocket,
    stats: Arc<RxStats>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ClusterReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterReceiver").field("addr", &self.addr).finish()
    }
}

impl ClusterReceiver {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts a pump thread that
    /// records every decoded entry into `monitor` at arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind(addr: SocketAddr, monitor: ClusterMonitor) -> Result<Self, RuntimeError> {
        let socket = UdpSocket::bind(addr).map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let addr = socket
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let shutdown = UdpSocket::bind((loopback_ip(&addr), 0))
            .map_err(|e| RuntimeError::Net { op: "bind", source: e })?;
        let shutdown_addr = shutdown
            .local_addr()
            .map_err(|e| RuntimeError::Net { op: "local_addr", source: e })?;
        let stats = Arc::new(RxStats::default());
        let pump_stats = Arc::clone(&stats);
        let handle = std::thread::Builder::new()
            .name("fd-cluster-recv".into())
            .spawn(move || pump(socket, monitor, shutdown_addr, pump_stats))
            .map_err(|e| RuntimeError::Spawn { thread: "fd-cluster-recv", source: e })?;
        Ok(Self { addr, shutdown, stats, handle: Some(handle) })
    }

    /// The bound address senders should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Well-formed batch datagrams received.
    pub fn datagrams_received(&self) -> u64 {
        self.stats.datagrams.load(Ordering::Relaxed)
    }

    /// Heartbeat entries recorded into the monitor.
    pub fn entries_received(&self) -> u64 {
        self.stats.entries.load(Ordering::Relaxed)
    }

    /// Datagrams rejected as malformed or foreign.
    pub fn rejected(&self) -> u64 {
        self.stats.rejected.load(Ordering::Relaxed)
    }

    /// Stops the pump thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(loopback_ip(&target));
            }
            let _ = self.shutdown.send_to(&SHUTDOWN_SENTINEL, target);
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterReceiver {
    fn drop(&mut self) {
        self.stop();
    }
}

fn loopback_ip(addr: &SocketAddr) -> IpAddr {
    match addr {
        SocketAddr::V4(_) => Ipv4Addr::LOCALHOST.into(),
        SocketAddr::V6(_) => Ipv6Addr::LOCALHOST.into(),
    }
}

fn pump(socket: UdpSocket, monitor: ClusterMonitor, shutdown_addr: SocketAddr, stats: Arc<RxStats>) {
    let mut buf = [0u8; 2048];
    loop {
        let (n, src) = match socket.recv_from(&mut buf) {
            Ok(r) => r,
            Err(_) => return,
        };
        if n == SHUTDOWN_SENTINEL.len() && buf[..n] == SHUTDOWN_SENTINEL && src == shutdown_addr {
            return;
        }
        match decode_batch(&buf[..n]) {
            Some(entries) => {
                stats.datagrams.fetch_add(1, Ordering::Relaxed);
                stats.entries.fetch_add(entries.len() as u64, Ordering::Relaxed);
                for e in entries {
                    monitor.record(e.peer, Heartbeat::new(e.seq, e.send_time));
                }
            }
            None => {
                stats.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, PeerConfig};
    use std::time::Duration;

    fn loop_addr() -> SocketAddr {
        SocketAddr::from((Ipv4Addr::LOCALHOST, 0))
    }

    #[test]
    fn batched_flow_end_to_end() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        for p in 0..16u64 {
            monitor.add_peer(p, PeerConfig::new(0.02, 0.06)).unwrap();
        }
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");

        for round in 1..=6u64 {
            let t = monitor.now();
            for p in 0..16u64 {
                tx.queue(p, round, t).unwrap();
            }
            tx.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }

        // 16 entries per round fit one datagram: full multiplexing.
        assert_eq!(tx.datagrams_sent(), 6);
        assert!((tx.batching_factor() - 16.0).abs() < 1e-9);

        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.entries_received() < 96 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.datagrams_received(), 6);
        assert_eq!(rx.entries_received(), 96);
        assert_eq!(rx.rejected(), 0);
        let snap = monitor.snapshot();
        assert_eq!(snap.trusted().len(), 16, "all peers trusted: {snap:?}");
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn rejects_foreign_datagrams() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let sock = UdpSocket::bind(loop_addr()).unwrap();
        // A single-heartbeat datagram (different magic) and plain noise.
        sock.send_to(&fd_runtime::udp::encode_heartbeat(Heartbeat::new(1, 0.5)), rx.local_addr())
            .unwrap();
        sock.send_to(b"not a heartbeat", rx.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while rx.rejected() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rx.rejected(), 2);
        assert_eq!(rx.datagrams_received(), 0);
        rx.shutdown();
        monitor.shutdown();
    }

    #[test]
    fn oversize_rounds_split_into_full_batches() {
        let monitor = ClusterMonitor::spawn(ClusterConfig::default()).expect("spawn");
        let rx = ClusterReceiver::bind(loop_addr(), monitor.clone()).expect("bind");
        let mut tx =
            ClusterSender::connect(rx.local_addr(), ClusterSenderConfig::default()).expect("tx");
        for p in 0..150u64 {
            tx.queue(p, 1, 0.01).unwrap();
        }
        tx.flush().unwrap();
        // 150 = 61 + 61 + 28: two auto-flushed full batches plus the tail.
        assert_eq!(tx.datagrams_sent(), 3);
        assert_eq!(tx.entries_sent(), 150);
        rx.shutdown();
        monitor.shutdown();
    }
}
