//! Batched wire protocol (v4, decodes v1/v2/v3).
//!
//! The single-watch runtime ships one heartbeat per datagram
//! (`fd-runtime::udp`, 20 bytes each). At cluster scale that is one
//! syscall and one UDP header per peer per `η`; here many heartbeats
//! share a datagram:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`2`) |
//! | 3      | 1    | entry count `c` (1..=[`MAX_BATCH`]) |
//! | 4 + 32·k | 8  | entry `k`: `peer_id: u64` LE |
//! | 12 + 32·k | 8 | entry `k`: `incarnation: u64` LE |
//! | 20 + 32·k | 8 | entry `k`: `seq: u64` LE |
//! | 28 + 32·k | 8 | entry `k`: `send_time: f64` LE |
//!
//! Version 2 adds the sender's *incarnation* to every entry so receivers
//! in the crash-recovery model can reject heartbeats from a previous
//! life of the same process (a datagram delayed in flight across a
//! crash must not refresh trust in the restarted peer). Version 1
//! frames — 24-byte entries without the incarnation — still decode,
//! with incarnation pinned to `0`: a mixed-version cluster keeps
//! working during a rolling upgrade, and v1 senders are simply treated
//! as processes that never restart. Heartbeat encoding still emits v2.
//!
//! Version 3 introduces **frame kinds** for the adaptive control plane:
//! a kind byte follows the version, so one magic covers both heartbeat
//! traffic and the monitor's sender-directed control messages:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`3`) |
//! | 3      | 1    | kind (`0` heartbeats, `1` control) |
//! | 4      | 1    | entry count `c` |
//! | 5 + 16·k | 8  | control entry `k`: `peer_id: u64` LE |
//! | 13 + 16·k | 8 | control entry `k`: `eta: f64` LE |
//!
//! A control entry is the §8.1 loop closing over the wire: the monitor
//! recommends a new intersending interval `η` for one peer, and the
//! peer's heartbeater consumes it through its own hysteresis gate. v3
//! heartbeat frames (kind 0) use the same 32-byte entries as v2.
//!
//! Version 4 adds the **federation digest** frame kind (`2`): the
//! compressed per-partition membership + QoS summary that monitor nodes
//! exchange in the anti-entropy gossip tier (`fd-federation`). A digest
//! frame carries a fixed header identifying the origin node, its
//! incarnation, the gossip round and the partition-level roll-up,
//! followed by zero or more compact per-peer state entries:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`4`) |
//! | 3      | 1    | kind (`2` digest) |
//! | 4      | 8    | `origin: u64` — sending monitor node id |
//! | 12     | 8    | `node_incarnation: u64` — the node's own life |
//! | 20     | 8    | `round: u64` — gossip round, starts at 1 |
//! | 28     | 8    | `at: f64` — sender cluster-clock seconds |
//! | 36     | 4    | `peers: u32` — owned-partition size |
//! | 40     | 4    | `suspected: u32` — of which currently suspected |
//! | 44     | 4    | `degraded: u32` — of which QoS-degraded |
//! | 48     | 1    | flags: bit 0 full refresh, bit 1 conformance ok |
//! | 49     | 1    | entry count `c` (0..=[`MAX_DIGEST_BATCH`]) |
//! | 50+17·k| 17   | entry `k`: `peer u64`, `incarnation u64`, state `u8` |
//!
//! The entry state byte uses bit 0 for trusted and bit 1 for degraded;
//! all other bits (in both flag bytes) must be zero. Unlike heartbeat
//! and control frames a digest may legally carry **zero** entries — a
//! delta round in which nothing changed still ships the header as the
//! node-level heartbeat and partition roll-up. v1–v3 frames decode
//! unchanged; a v3 frame claiming the digest kind is rejected (digests
//! exist only from v4 on).
//!
//! Moving the gossip tier onto real, lossy UDP adds two more v4 kinds.
//! Kind `3` is the **repair request** (NACK): a receiver that observed
//! a gap in an origin's digest round sequence asks that origin for a
//! full refresh:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`4`) |
//! | 3      | 1    | kind (`3` repair request) |
//! | 4      | 8    | `requester: u64` — the node asking |
//! | 12     | 8    | `target: u64` — whose digest stream has the gap |
//! | 20     | 8    | `target_incarnation: u64` — the life the gap is in |
//! | 28     | 8    | `have_round: u64` — highest round merged so far |
//! | 36     | 8    | `at: f64` — requester clock seconds |
//!
//! Kind `4` is the **relayed digest**: a complete kind-2 digest frame
//! forwarded verbatim on behalf of an origin the receiver may not be
//! able to reach directly, prefixed with the relaying node and a hop
//! count so routing stays loop-bounded:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`4`) |
//! | 3      | 1    | kind (`4` relayed digest) |
//! | 4      | 8    | `relayer: u64` — the forwarding node |
//! | 12     | 1    | `hop: u8` — ≥ 1; receivers enforce their cap |
//! | 13     | …    | one complete, well-formed kind-2 digest frame |
//!
//! The embedded bytes must decode as exactly one digest frame (the
//! embedded decode is the same strict [`decode_frame`] path), so a
//! relay can never smuggle malformed digests past the ingest checks.
//!
//! The magic differs from the single-heartbeat magic (`[0xFD, 0xB1]`), so
//! each receiver rejects the other's traffic instead of misparsing it.
//! Decoding is strict *and total*: exact length for the declared count,
//! version and kind, known version, at least one entry, finite and
//! positive-where-required values — a stray, truncated, or corrupted
//! packet yields `None`, never a bogus entry and never a panic (every
//! slice access goes through a checked cursor; there is no indexing
//! arithmetic that can leave the buffer).

use crate::PeerId;

/// Magic bytes opening every batch datagram.
pub const BATCH_MAGIC: [u8; 2] = [0xFD, 0xC1];

/// Version of the batch wire format emitted by [`encode_batch`].
pub const BATCH_WIRE_VERSION: u8 = 2;

/// The oldest wire version still accepted by [`decode_batch`]:
/// 24-byte entries with no incarnation field (decoded as incarnation 0).
pub const BATCH_WIRE_VERSION_V1: u8 = 1;

/// The kinded wire version emitted by [`encode_control`] (and accepted
/// for heartbeat frames).
pub const BATCH_WIRE_VERSION_V3: u8 = 3;

/// The federation wire version emitted by [`encode_digest`]. v4 frames
/// of kind 0/1 use the v3 layouts unchanged; kind 2 is the digest.
pub const BATCH_WIRE_VERSION_V4: u8 = 4;

/// v3 frame kind: a batch of heartbeat entries (same entry layout as v2).
pub const FRAME_KIND_HEARTBEATS: u8 = 0;

/// v3 frame kind: a batch of `η`-recommendation control entries.
pub const FRAME_KIND_CONTROL: u8 = 1;

/// v4 frame kind: a federation gossip digest.
pub const FRAME_KIND_DIGEST: u8 = 2;

/// v4 frame kind: a digest repair request (NACK) — "your round sequence
/// has a gap here, send me a full refresh".
pub const FRAME_KIND_REPAIR: u8 = 3;

/// v4 frame kind: a digest relayed on behalf of its origin by a third
/// node, hop-counted.
pub const FRAME_KIND_RELAY: u8 = 4;

/// Size of the v1/v2 batch header: magic, version, entry count.
pub const HEADER_LEN: usize = 4;

/// Size of the v3 batch header: magic, version, kind, entry count.
pub const HEADER_LEN_V3: usize = 5;

/// Size of the v4 digest header: magic, version, kind, origin,
/// node incarnation, round, timestamp, three roll-up counts, flags,
/// entry count.
pub const HEADER_LEN_DIGEST: usize = 50;

/// Size of one encoded digest entry: `peer + incarnation + state`.
pub const DIGEST_ENTRY_LEN: usize = 17;

/// Exact size of a v4 repair-request frame.
pub const REPAIR_FRAME_LEN: usize = 44;

/// Size of the relay prefix (magic, version, kind, relayer, hop) that
/// precedes the embedded digest frame.
pub const RELAY_HEADER_LEN: usize = 13;

/// Most digest entries per datagram (50 + 83·17 = 1461 bytes).
pub const MAX_DIGEST_BATCH: usize = 83;

/// Size of one encoded v2/v3 heartbeat entry:
/// `peer + incarnation + seq + send_time`.
pub const ENTRY_LEN: usize = 32;

/// Size of one encoded v1 heartbeat entry: `peer + seq + send_time`.
pub const ENTRY_LEN_V1: usize = 24;

/// Size of one encoded control entry: `peer + eta`.
pub const CONTROL_ENTRY_LEN: usize = 16;

/// Most entries per datagram: `HEADER_LEN + MAX_BATCH · ENTRY_LEN`
/// = 1444 bytes, under the 1472-byte UDP payload of a 1500-byte
/// Ethernet MTU (no IP fragmentation).
pub const MAX_BATCH: usize = 45;

/// Most entries per v1 datagram (61·24 + 4 = 1468 bytes). A v1 frame
/// may legally carry more entries than [`MAX_BATCH`].
pub const MAX_BATCH_V1: usize = 61;

/// Most control entries per datagram (5 + 91·16 = 1461 bytes).
pub const MAX_CONTROL_BATCH: usize = 91;

/// One peer's heartbeat inside a batch: which peer, which life of that
/// peer, which `mᵢ`, and the sender-clock timestamp `S` of §5.2 (NFD-E
/// ignores it; estimators that assume synchronized clocks may use it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatEntry {
    /// The monitored peer this heartbeat vouches for.
    pub peer: PeerId,
    /// The sender's incarnation — bumped on every recovery from a
    /// crash, `0` for processes that never persist one (and for all
    /// heartbeats decoded from v1 frames).
    pub incarnation: u64,
    /// Sequence number `i` of `mᵢ`, starting at 1 within an incarnation.
    pub seq: u64,
    /// Send timestamp on the sender's clock, seconds.
    pub send_time: f64,
}

/// One peer's `η` recommendation inside a v3 control frame: the
/// monitor's configurator asks the sender for this intersending
/// interval. Advisory — the heartbeater applies it through rate
/// limiting and hysteresis, never blindly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlEntry {
    /// The peer whose heartbeater should retune.
    pub peer: PeerId,
    /// Recommended intersending interval `η`, seconds (positive, finite).
    pub eta: f64,
}

/// One peer's compressed state inside a federation digest: which peer,
/// which life of it, and its membership/QoS verdict at the origin node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestEntry {
    /// The monitored peer this entry describes.
    pub peer: PeerId,
    /// The highest incarnation the origin node has accepted for it.
    pub incarnation: u64,
    /// `true` if the origin's detector currently trusts the peer.
    pub trusted: bool,
    /// `true` if the peer's adaptive control loop is in `Degraded`.
    pub degraded: bool,
}

/// The partition-level roll-up carried by every digest frame, entries
/// or not: how many peers the origin owns and how many of them are in
/// each bad state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DigestSummary {
    /// Peers in the origin's owned partition.
    pub peers: u32,
    /// Of those, currently suspected (must be ≤ `peers`).
    pub suspected: u32,
    /// Of those, QoS-degraded (must be ≤ `peers`).
    pub degraded: u32,
    /// `true` if the origin's latest Conformance check passed.
    pub conformance_ok: bool,
}

/// One federation gossip digest: the origin node's identity and life,
/// the gossip round, its partition roll-up, and zero or more per-peer
/// state entries (a delta, or a chunk of a full refresh).
#[derive(Debug, Clone, PartialEq)]
pub struct DigestFrame {
    /// The sending monitor node.
    pub origin: u64,
    /// The sender's own incarnation — receivers reject digests from a
    /// previous life of the node and reset partition state on a newer.
    pub node_incarnation: u64,
    /// Gossip round at the origin, starting at 1 within an incarnation.
    pub round: u64,
    /// Origin cluster-clock timestamp, seconds (finite).
    pub at: f64,
    /// Partition-level counts.
    pub summary: DigestSummary,
    /// `true` if this frame belongs to a full anti-entropy refresh (the
    /// receiver replaces, rather than merges, its view of the origin's
    /// partition once the refresh round completes).
    pub full: bool,
    /// Per-peer state deltas (may be empty for a summary-only round).
    pub entries: Vec<DigestEntry>,
}

/// A digest repair request (NACK): the requester noticed a gap in the
/// target's digest round sequence — deltas lost on the wire that no
/// later delta will repeat — and asks for a full refresh. Bounded,
/// jittered resend pacing is the *requester's* job (see
/// `fd-federation`); the frame itself is stateless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairRequest {
    /// The node asking for the refresh.
    pub requester: u64,
    /// The node whose digest stream has the gap.
    pub target: u64,
    /// The target incarnation the requester holds state for.
    pub target_incarnation: u64,
    /// Highest round the requester has merged (0 = nothing yet).
    pub have_round: u64,
    /// Requester clock when the gap was noticed, seconds (finite).
    pub at: f64,
}

/// A digest forwarded on behalf of its origin by a third node: the
/// transitive-reachability path that keeps an asymmetric partition from
/// looking like a node crash. `hop` counts forwarding steps (1 = the
/// relayer heard the origin directly).
#[derive(Debug, Clone, PartialEq)]
pub struct RelayedDigest {
    /// The node that forwarded the digest (not its origin).
    pub relayer: u64,
    /// Forwarding steps taken, ≥ 1; receivers drop frames beyond their
    /// configured hop cap.
    pub hop: u8,
    /// The relayed digest, decoded through the same strict path as a
    /// directly-received one.
    pub digest: DigestFrame,
}

/// A decoded datagram: which kind of traffic it carried.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Heartbeat entries (v1, v2, or v3/v4 kind-0 framing).
    Heartbeats(Vec<HeartbeatEntry>),
    /// `η`-recommendation control entries (v3/v4 kind-1 framing).
    Control(Vec<ControlEntry>),
    /// A federation gossip digest (v4 kind-2 framing).
    Digest(DigestFrame),
    /// A digest repair request (v4 kind-3 framing).
    Repair(RepairRequest),
    /// A relayed digest (v4 kind-4 framing).
    Relayed(RelayedDigest),
}

/// Encodes a batch of heartbeat entries into one v2 datagram.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH`] — callers
/// chunk before encoding.
pub fn encode_batch(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH,
        "batch must hold 1..={MAX_BATCH} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + entries.len() * ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.incarnation.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

/// Encodes a batch of control entries into one v3 kind-1 datagram.
///
/// # Panics
///
/// Panics if `entries` is empty, longer than [`MAX_CONTROL_BATCH`], or
/// contains a non-positive or non-finite `η` (the decoder would reject
/// the frame wholesale, so encoding it is a caller bug).
pub fn encode_control(entries: &[ControlEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_CONTROL_BATCH,
        "control batch must hold 1..={MAX_CONTROL_BATCH} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN_V3 + entries.len() * CONTROL_ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V3);
    buf.push(FRAME_KIND_CONTROL);
    buf.push(entries.len() as u8);
    for e in entries {
        assert!(
            e.eta > 0.0 && e.eta.is_finite(),
            "control η must be positive and finite, got {}",
            e.eta
        );
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.eta.to_le_bytes());
    }
    buf
}

/// Encodes one federation digest into a v4 kind-2 datagram.
///
/// # Panics
///
/// Panics if the frame holds more than [`MAX_DIGEST_BATCH`] entries,
/// the summary counts are inconsistent (`suspected` or `degraded`
/// exceeding `peers`), or `at` is not finite — the decoder would reject
/// the frame wholesale, so encoding it is a caller bug. Zero entries
/// are legal: a quiet delta round still ships the header.
pub fn encode_digest(frame: &DigestFrame) -> Vec<u8> {
    assert!(
        frame.entries.len() <= MAX_DIGEST_BATCH,
        "digest must hold 0..={MAX_DIGEST_BATCH} entries, got {}",
        frame.entries.len()
    );
    assert!(
        frame.at.is_finite(),
        "digest timestamp must be finite, got {}",
        frame.at
    );
    assert!(
        frame.summary.suspected <= frame.summary.peers
            && frame.summary.degraded <= frame.summary.peers,
        "digest summary counts must not exceed the partition size"
    );
    let mut buf = Vec::with_capacity(HEADER_LEN_DIGEST + frame.entries.len() * DIGEST_ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V4);
    buf.push(FRAME_KIND_DIGEST);
    buf.extend_from_slice(&frame.origin.to_le_bytes());
    buf.extend_from_slice(&frame.node_incarnation.to_le_bytes());
    buf.extend_from_slice(&frame.round.to_le_bytes());
    buf.extend_from_slice(&frame.at.to_le_bytes());
    buf.extend_from_slice(&frame.summary.peers.to_le_bytes());
    buf.extend_from_slice(&frame.summary.suspected.to_le_bytes());
    buf.extend_from_slice(&frame.summary.degraded.to_le_bytes());
    let mut flags = 0u8;
    if frame.full {
        flags |= 0b01;
    }
    if frame.summary.conformance_ok {
        flags |= 0b10;
    }
    buf.push(flags);
    buf.push(frame.entries.len() as u8);
    for e in &frame.entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.incarnation.to_le_bytes());
        let mut state = 0u8;
        if e.trusted {
            state |= 0b01;
        }
        if e.degraded {
            state |= 0b10;
        }
        buf.push(state);
    }
    buf
}

/// Encodes one repair request into a v4 kind-3 datagram.
///
/// # Panics
///
/// Panics if `at` is not finite — the decoder would reject the frame
/// wholesale, so encoding it is a caller bug.
pub fn encode_repair(req: &RepairRequest) -> Vec<u8> {
    assert!(req.at.is_finite(), "repair timestamp must be finite, got {}", req.at);
    let mut buf = Vec::with_capacity(REPAIR_FRAME_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V4);
    buf.push(FRAME_KIND_REPAIR);
    buf.extend_from_slice(&req.requester.to_le_bytes());
    buf.extend_from_slice(&req.target.to_le_bytes());
    buf.extend_from_slice(&req.target_incarnation.to_le_bytes());
    buf.extend_from_slice(&req.have_round.to_le_bytes());
    buf.extend_from_slice(&req.at.to_le_bytes());
    buf
}

/// Wraps an already-encoded digest frame for relay: prefixes the
/// relayer id and hop count. The inner bytes are forwarded verbatim, so
/// what the final receiver decodes is bit-identical to what the origin
/// sent.
///
/// # Panics
///
/// Panics if `hop == 0` (a zero-hop relay is a direct send — encode the
/// digest itself) or if `digest_bytes` is not a valid digest frame.
pub fn encode_relay(relayer: u64, hop: u8, digest_bytes: &[u8]) -> Vec<u8> {
    assert!(hop >= 1, "a relayed digest has taken at least one hop");
    assert!(
        matches!(decode_frame(digest_bytes), Some(Frame::Digest(_))),
        "relay payload must be one well-formed digest frame"
    );
    let mut buf = Vec::with_capacity(RELAY_HEADER_LEN + digest_bytes.len());
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V4);
    buf.push(FRAME_KIND_RELAY);
    buf.extend_from_slice(&relayer.to_le_bytes());
    buf.push(hop);
    buf.extend_from_slice(digest_bytes);
    buf
}

/// A bounds-checked little-endian reader: every access is `Option`al, so
/// no input — however truncated or hostile — can make decoding index
/// out of the buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let bytes: [u8; 4] = self.buf.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let bytes: [u8; 8] = self.buf.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

/// Decodes one batch datagram of any supported framing (v1, v2, v3, or
/// v4 with any known kind).
///
/// Returns `None` for anything that is not exactly one well-formed
/// frame: short header, wrong magic, unknown version or kind, zero
/// entries (digests excepted), a declared entry count that exceeds (or
/// falls short of) the bytes actually present, any non-finite
/// timestamp, any non-positive/non-finite control `η`, inconsistent
/// digest summary counts, or unknown digest flag/state bits. A v3 frame
/// claiming the digest kind is rejected — digests exist only from v4
/// on. Never panics, for any input.
pub fn decode_frame(buf: &[u8]) -> Option<Frame> {
    let mut c = Cursor::new(buf);
    if [c.u8()?, c.u8()?] != BATCH_MAGIC {
        return None;
    }
    let version = c.u8()?;
    let kind = match version {
        BATCH_WIRE_VERSION_V1 | BATCH_WIRE_VERSION => FRAME_KIND_HEARTBEATS,
        BATCH_WIRE_VERSION_V3 | BATCH_WIRE_VERSION_V4 => c.u8()?,
        _ => return None,
    };
    match kind {
        FRAME_KIND_HEARTBEATS => {
            let count = c.u8()? as usize;
            let (entry_len, max_batch, with_incarnation) = match version {
                BATCH_WIRE_VERSION_V1 => (ENTRY_LEN_V1, MAX_BATCH_V1, false),
                _ => (ENTRY_LEN, MAX_BATCH, true),
            };
            // Reject both a count that exceeds the buffer and trailing
            // garbage: the declared count must match the bytes exactly.
            if count == 0 || count > max_batch || c.remaining() != count * entry_len {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let peer = c.u64()?;
                let incarnation = if with_incarnation { c.u64()? } else { 0 };
                let seq = c.u64()?;
                let send_time = c.f64()?;
                if !send_time.is_finite() {
                    return None;
                }
                entries.push(HeartbeatEntry {
                    peer,
                    incarnation,
                    seq,
                    send_time,
                });
            }
            Some(Frame::Heartbeats(entries))
        }
        FRAME_KIND_CONTROL => {
            let count = c.u8()? as usize;
            if count == 0
                || count > MAX_CONTROL_BATCH
                || c.remaining() != count * CONTROL_ENTRY_LEN
            {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let peer = c.u64()?;
                let eta = c.f64()?;
                if !(eta > 0.0 && eta.is_finite()) {
                    return None;
                }
                entries.push(ControlEntry { peer, eta });
            }
            Some(Frame::Control(entries))
        }
        FRAME_KIND_DIGEST => {
            if version != BATCH_WIRE_VERSION_V4 {
                return None;
            }
            let origin = c.u64()?;
            let node_incarnation = c.u64()?;
            let round = c.u64()?;
            let at = c.f64()?;
            if !at.is_finite() {
                return None;
            }
            let peers = c.u32()?;
            let suspected = c.u32()?;
            let degraded = c.u32()?;
            if suspected > peers || degraded > peers {
                return None;
            }
            let flags = c.u8()?;
            if flags & !0b11 != 0 {
                return None;
            }
            let count = c.u8()? as usize;
            if count > MAX_DIGEST_BATCH || c.remaining() != count * DIGEST_ENTRY_LEN {
                return None;
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let peer = c.u64()?;
                let incarnation = c.u64()?;
                let state = c.u8()?;
                if state & !0b11 != 0 {
                    return None;
                }
                entries.push(DigestEntry {
                    peer,
                    incarnation,
                    trusted: state & 0b01 != 0,
                    degraded: state & 0b10 != 0,
                });
            }
            Some(Frame::Digest(DigestFrame {
                origin,
                node_incarnation,
                round,
                at,
                summary: DigestSummary {
                    peers,
                    suspected,
                    degraded,
                    conformance_ok: flags & 0b10 != 0,
                },
                full: flags & 0b01 != 0,
                entries,
            }))
        }
        FRAME_KIND_REPAIR => {
            if version != BATCH_WIRE_VERSION_V4 || buf.len() != REPAIR_FRAME_LEN {
                return None;
            }
            let requester = c.u64()?;
            let target = c.u64()?;
            let target_incarnation = c.u64()?;
            let have_round = c.u64()?;
            let at = c.f64()?;
            if !at.is_finite() {
                return None;
            }
            Some(Frame::Repair(RepairRequest {
                requester,
                target,
                target_incarnation,
                have_round,
                at,
            }))
        }
        FRAME_KIND_RELAY => {
            if version != BATCH_WIRE_VERSION_V4 {
                return None;
            }
            let relayer = c.u64()?;
            let hop = c.u8()?;
            if hop == 0 {
                return None;
            }
            // The payload must be exactly one well-formed digest frame;
            // the recursive decode is depth-1 by construction (a relayed
            // relay fails the Digest match below).
            let inner = buf.get(c.pos..)?;
            match decode_frame(inner)? {
                Frame::Digest(digest) => {
                    Some(Frame::Relayed(RelayedDigest { relayer, hop, digest }))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Decodes a *heartbeat* batch datagram (v1, v2, or v3/v4 kind-0
/// framing).
///
/// Control and digest frames — valid frames of the wrong kind for a
/// heartbeat receiver — decode as `None` here, exactly like any other
/// foreign traffic (the receiver pump counts them rejected). See
/// [`decode_frame`] for the kind-dispatching decoder.
pub fn decode_batch(buf: &[u8]) -> Option<Vec<HeartbeatEntry>> {
    match decode_frame(buf)? {
        Frame::Heartbeats(entries) => Some(entries),
        Frame::Control(_) | Frame::Digest(_) | Frame::Repair(_) | Frame::Relayed(_) => None,
    }
}

/// Encodes a batch in the legacy v1 framing (no incarnation field).
///
/// Production senders always emit v2; this exists so tests — and any
/// interop harness — can produce the frames an un-upgraded sender
/// would, and check that [`decode_batch`] still accepts them.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH_V1`].
pub fn encode_batch_v1(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH_V1,
        "v1 batch must hold 1..={MAX_BATCH_V1} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + entries.len() * ENTRY_LEN_V1);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V1);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

/// Encodes a batch in the v3 kind-0 (heartbeats) framing.
///
/// Production senders emit v2 until every receiver understands v3; this
/// exists so tests can verify v3 heartbeat frames decode identically.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH`].
pub fn encode_batch_v3(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH,
        "batch must hold 1..={MAX_BATCH} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN_V3 + entries.len() * ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V3);
    buf.push(FRAME_KIND_HEARTBEATS);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.incarnation.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<HeartbeatEntry> {
        (0..n)
            .map(|k| HeartbeatEntry {
                peer: k as u64 * 7 + 1,
                incarnation: k as u64 % 3,
                seq: k as u64 + 1,
                send_time: 0.05 * (k as f64 + 1.0),
            })
            .collect()
    }

    fn control_sample(n: usize) -> Vec<ControlEntry> {
        (0..n)
            .map(|k| ControlEntry {
                peer: k as u64 * 11 + 1,
                eta: 0.01 * (k as f64 + 1.0),
            })
            .collect()
    }

    fn digest_sample(n: usize) -> DigestFrame {
        DigestFrame {
            origin: 3,
            node_incarnation: 2,
            round: 41,
            at: 123.5,
            summary: DigestSummary {
                peers: (n as u32).max(10),
                suspected: 2,
                degraded: 1,
                conformance_ok: true,
            },
            full: n.is_multiple_of(2),
            entries: (0..n)
                .map(|k| DigestEntry {
                    peer: k as u64 * 13 + 5,
                    incarnation: k as u64 % 4,
                    trusted: k % 3 != 0,
                    degraded: k % 5 == 0,
                })
                .collect(),
        }
    }

    #[test]
    fn digest_roundtrips_including_empty() {
        for n in [0, 1, 7, MAX_DIGEST_BATCH] {
            let frame = digest_sample(n);
            let buf = encode_digest(&frame);
            assert_eq!(buf.len(), HEADER_LEN_DIGEST + n * DIGEST_ENTRY_LEN);
            assert_eq!(buf[2], BATCH_WIRE_VERSION_V4);
            assert_eq!(buf[3], FRAME_KIND_DIGEST);
            assert_eq!(decode_frame(&buf), Some(Frame::Digest(frame)));
        }
    }

    #[test]
    fn digest_frames_are_not_heartbeats() {
        // A heartbeat receiver must drop gossip traffic, not misparse it.
        let buf = encode_digest(&digest_sample(3));
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    fn digest_requires_v4() {
        // Digests exist only from v4 on: a v3 frame claiming the digest
        // kind is rejected even when the rest of the bytes are valid.
        let mut buf = encode_digest(&digest_sample(2));
        buf[2] = BATCH_WIRE_VERSION_V3;
        assert_eq!(decode_frame(&buf), None);
    }

    #[test]
    fn v4_heartbeat_and_control_use_v3_layouts() {
        // v4 frames of kind 0/1 reuse the v3 layouts unchanged.
        let entries = sample(4);
        let mut hb = encode_batch_v3(&entries);
        hb[2] = BATCH_WIRE_VERSION_V4;
        assert_eq!(decode_batch(&hb).as_deref(), Some(&entries[..]));

        let ctl = control_sample(4);
        let mut cf = encode_control(&ctl);
        cf[2] = BATCH_WIRE_VERSION_V4;
        assert_eq!(decode_frame(&cf), Some(Frame::Control(ctl)));
    }

    #[test]
    fn digest_rejects_malformed() {
        let good = encode_digest(&digest_sample(2));
        assert!(decode_frame(&good).is_some());

        // Unknown header flag bits.
        let mut flags = good.clone();
        flags[48] |= 0b100;
        assert_eq!(decode_frame(&flags), None);

        // Unknown entry state bits.
        let mut state = good.clone();
        state[HEADER_LEN_DIGEST + DIGEST_ENTRY_LEN - 1] |= 0b1000;
        assert_eq!(decode_frame(&state), None);

        // Non-finite timestamp.
        let mut ts = good.clone();
        ts[28..36].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_frame(&ts), None);

        // Summary inconsistency: suspected > peers.
        let mut sus = good.clone();
        sus[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&sus), None);

        // Count exceeding the buffer, and trailing garbage.
        let mut count = good.clone();
        count[49] = 255;
        assert_eq!(decode_frame(&count), None);
        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(decode_frame(&trailing), None);

        // Truncation anywhere — header or entries.
        for cut in 1..good.len() {
            assert_eq!(decode_frame(&good[..good.len() - cut]), None);
        }
    }

    #[test]
    #[should_panic(expected = "digest summary counts")]
    fn encode_digest_rejects_inconsistent_summary() {
        let mut frame = digest_sample(1);
        frame.summary.suspected = frame.summary.peers + 1;
        encode_digest(&frame);
    }

    #[test]
    fn roundtrips_single_and_full_batches() {
        for n in [1, 2, 8, MAX_BATCH] {
            let entries = sample(n);
            let buf = encode_batch(&entries);
            assert_eq!(buf.len(), HEADER_LEN + n * ENTRY_LEN);
            assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
        }
    }

    #[test]
    fn v1_frames_decode_with_zero_incarnation() {
        // A frame from an un-upgraded sender: same entries, v1 framing.
        let mut entries = sample(MAX_BATCH_V1);
        let buf = encode_batch_v1(&entries);
        assert_eq!(buf.len(), HEADER_LEN + MAX_BATCH_V1 * ENTRY_LEN_V1);
        assert_eq!(buf[2], BATCH_WIRE_VERSION_V1);
        for e in &mut entries {
            e.incarnation = 0; // v1 carries no incarnation on the wire
        }
        assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
    }

    #[test]
    fn v3_heartbeat_frames_decode_identically() {
        for n in [1, 7, MAX_BATCH] {
            let entries = sample(n);
            let buf = encode_batch_v3(&entries);
            assert_eq!(buf.len(), HEADER_LEN_V3 + n * ENTRY_LEN);
            assert_eq!(buf[2], BATCH_WIRE_VERSION_V3);
            assert_eq!(buf[3], FRAME_KIND_HEARTBEATS);
            assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        for n in [1, 5, MAX_CONTROL_BATCH] {
            let entries = control_sample(n);
            let buf = encode_control(&entries);
            assert_eq!(buf.len(), HEADER_LEN_V3 + n * CONTROL_ENTRY_LEN);
            assert_eq!(decode_frame(&buf), Some(Frame::Control(entries)));
        }
    }

    #[test]
    fn control_frames_are_not_heartbeats() {
        // A heartbeat receiver must drop control traffic, not misparse it.
        let buf = encode_control(&control_sample(3));
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    fn control_rejects_bad_eta() {
        let mut buf = encode_control(&control_sample(2));
        let base = HEADER_LEN_V3 + CONTROL_ENTRY_LEN + 8; // second entry's η
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut b = buf.clone();
            b[base..base + 8].copy_from_slice(&bad.to_le_bytes());
            assert_eq!(decode_frame(&b), None, "η = {bad} must be rejected");
        }
        // Unknown kind is rejected too.
        buf[3] = 7;
        assert_eq!(decode_frame(&buf), None);
    }

    #[test]
    #[should_panic(expected = "control η must be positive")]
    fn encode_control_rejects_bad_eta() {
        encode_control(&[ControlEntry { peer: 1, eta: 0.0 }]);
    }

    #[test]
    fn v1_length_rules_are_enforced() {
        let buf = encode_batch_v1(&sample(3));
        // Truncating to a valid *v2* length must still reject: the
        // decoder picks entry size by the declared version.
        assert_eq!(decode_batch(&buf[..HEADER_LEN + 2 * ENTRY_LEN_V1]), None);
        let mut wrong_count = buf.clone();
        wrong_count[3] = 4;
        assert_eq!(decode_batch(&wrong_count), None);
    }

    #[test]
    fn rejects_count_exceeding_buffer() {
        // The declared count must never exceed what the bytes can hold —
        // for every framing.
        for mut buf in [
            encode_batch(&sample(2)),
            encode_batch_v1(&sample(2)),
            encode_batch_v3(&sample(2)),
        ] {
            buf[3] = 255; // count byte for v1/v2; kind byte for v3…
            assert_eq!(decode_frame(&buf), None);
        }
        let mut ctl = encode_control(&control_sample(2));
        ctl[4] = 255; // …count byte for v3
        assert_eq!(decode_frame(&ctl), None);
    }

    #[test]
    fn rejects_foreign_and_malformed_headers() {
        let good = encode_batch(&sample(3));
        assert!(decode_batch(&good).is_some());

        // The single-heartbeat protocol's magic must not decode as a batch.
        let mut other = good.clone();
        other[..2].copy_from_slice(&fd_runtime::HEARTBEAT_MAGIC);
        assert_eq!(decode_batch(&other), None);

        let mut future = good.clone();
        future[2] = BATCH_WIRE_VERSION_V3 + 1;
        assert_eq!(decode_batch(&future), None);

        let mut zero = good.clone();
        zero[3] = 0;
        assert_eq!(decode_batch(&zero), None);

        let mut wrong_count = good.clone();
        wrong_count[3] = 4; // claims one more entry than present
        assert_eq!(decode_batch(&wrong_count), None);

        assert_eq!(decode_batch(&[]), None);
        assert_eq!(decode_batch(&good[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn rejects_non_finite_timestamps() {
        let mut buf = encode_batch(&sample(2));
        let base = HEADER_LEN + ENTRY_LEN + 24; // second entry's send_time
        buf[base..base + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_empty() {
        encode_batch(&[]);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_oversize() {
        encode_batch(&sample(MAX_BATCH + 1));
    }

    fn repair_sample() -> RepairRequest {
        RepairRequest {
            requester: 7,
            target: 3,
            target_incarnation: 2,
            have_round: 41,
            at: 19.25,
        }
    }

    #[test]
    fn repair_roundtrips() {
        let req = repair_sample();
        let buf = encode_repair(&req);
        assert_eq!(buf.len(), REPAIR_FRAME_LEN);
        assert_eq!(buf[2], BATCH_WIRE_VERSION_V4);
        assert_eq!(buf[3], FRAME_KIND_REPAIR);
        assert_eq!(decode_frame(&buf), Some(Frame::Repair(req)));
        // Repair frames are control-plane traffic: a heartbeat receiver
        // rejects (and counts) them like any other foreign datagram.
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    fn repair_rejects_truncation_padding_and_old_versions() {
        let buf = encode_repair(&repair_sample());
        for cut in 1..buf.len() {
            assert_eq!(decode_frame(&buf[..buf.len() - cut]), None, "cut={cut}");
        }
        let mut padded = buf.clone();
        padded.push(0);
        assert_eq!(decode_frame(&padded), None);
        // Repair exists only from v4 on: a v3 frame claiming kind 3 is
        // rejected even though the body would parse.
        let mut v3 = buf.clone();
        v3[2] = BATCH_WIRE_VERSION_V3;
        assert_eq!(decode_frame(&v3), None);
        let mut nan_at = buf;
        nan_at[REPAIR_FRAME_LEN - 8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_frame(&nan_at), None);
    }

    #[test]
    fn relay_roundtrips_with_bit_identical_inner_digest() {
        for n in [0, 3, MAX_DIGEST_BATCH] {
            let digest = digest_sample(n);
            let inner = encode_digest(&digest);
            let buf = encode_relay(9, 2, &inner);
            assert_eq!(buf.len(), RELAY_HEADER_LEN + inner.len());
            assert_eq!(buf[3], FRAME_KIND_RELAY);
            assert_eq!(&buf[RELAY_HEADER_LEN..], &inner[..]);
            match decode_frame(&buf) {
                Some(Frame::Relayed(r)) => {
                    assert_eq!(r.relayer, 9);
                    assert_eq!(r.hop, 2);
                    assert_eq!(r.digest, digest);
                }
                other => panic!("expected relayed digest, got {other:?}"),
            }
            assert_eq!(decode_batch(&buf), None);
        }
    }

    #[test]
    fn relay_rejects_zero_hop_old_version_and_non_digest_payload() {
        let inner = encode_digest(&digest_sample(2));
        let mut zero_hop = encode_relay(9, 1, &inner);
        zero_hop[RELAY_HEADER_LEN - 1] = 0;
        assert_eq!(decode_frame(&zero_hop), None);

        let mut v3 = encode_relay(9, 1, &inner);
        v3[2] = BATCH_WIRE_VERSION_V3;
        assert_eq!(decode_frame(&v3), None);

        // A relayed relay must not decode: relaying is depth-1 on the
        // wire; forwarding re-wraps the original digest bytes instead.
        let relayed = encode_relay(9, 1, &inner);
        let mut nested = Vec::new();
        nested.extend_from_slice(&BATCH_MAGIC);
        nested.push(BATCH_WIRE_VERSION_V4);
        nested.push(FRAME_KIND_RELAY);
        nested.extend_from_slice(&11u64.to_le_bytes());
        nested.push(2);
        nested.extend_from_slice(&relayed);
        assert_eq!(decode_frame(&nested), None);

        // Same for heartbeat and repair payloads behind a relay header.
        for payload in [encode_batch(&sample(2)), encode_repair(&repair_sample())] {
            let mut frame = Vec::new();
            frame.extend_from_slice(&BATCH_MAGIC);
            frame.push(BATCH_WIRE_VERSION_V4);
            frame.push(FRAME_KIND_RELAY);
            frame.extend_from_slice(&11u64.to_le_bytes());
            frame.push(1);
            frame.extend_from_slice(&payload);
            assert_eq!(decode_frame(&frame), None);
        }
    }

    #[test]
    fn relay_rejects_truncation_anywhere() {
        let buf = encode_relay(4, 1, &encode_digest(&digest_sample(5)));
        for cut in 1..buf.len() {
            assert_eq!(decode_frame(&buf[..buf.len() - cut]), None, "cut={cut}");
        }
        let mut padded = buf;
        padded.push(0);
        assert_eq!(decode_frame(&padded), None);
    }

    #[test]
    #[should_panic(expected = "at least one hop")]
    fn encode_relay_rejects_zero_hop() {
        encode_relay(1, 0, &encode_digest(&digest_sample(1)));
    }

    #[test]
    #[should_panic(expected = "well-formed digest frame")]
    fn encode_relay_rejects_non_digest_payload() {
        encode_relay(1, 1, &encode_batch(&sample(1)));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn prop_roundtrip(
                n in 1usize..MAX_BATCH,
                peer0 in 0u64..u64::MAX,
                inc0 in 0u64..u64::MAX,
                seq0 in 0u64..u64::MAX,
                ts in -1.0e12f64..1.0e12,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: peer0.wrapping_add(k as u64),
                        incarnation: inc0.wrapping_add(k as u64),
                        seq: seq0.wrapping_add(k as u64),
                        send_time: ts + k as f64,
                    })
                    .collect();
                let buf = encode_batch(&entries);
                prop_assert_eq!(buf.len(), HEADER_LEN + n * ENTRY_LEN);
                prop_assert_eq!(decode_batch(&buf), Some(entries));
            }

            #[test]
            fn prop_v1_roundtrip(
                n in 1usize..MAX_BATCH_V1,
                peer0 in 0u64..u64::MAX,
                seq0 in 0u64..u64::MAX,
                ts in -1.0e12f64..1.0e12,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: peer0.wrapping_add(k as u64),
                        incarnation: 0,
                        seq: seq0.wrapping_add(k as u64),
                        send_time: ts + k as f64,
                    })
                    .collect();
                let buf = encode_batch_v1(&entries);
                prop_assert_eq!(decode_batch(&buf), Some(entries));
            }

            #[test]
            fn prop_control_roundtrip(
                n in 1usize..MAX_CONTROL_BATCH,
                peer0 in 0u64..u64::MAX,
                eta0 in 1.0e-6f64..1.0e6,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| ControlEntry {
                        peer: peer0.wrapping_add(k as u64),
                        eta: eta0 + k as f64 * 1e-7,
                    })
                    .collect();
                let buf = encode_control(&entries);
                prop_assert_eq!(buf.len(), HEADER_LEN_V3 + n * CONTROL_ENTRY_LEN);
                prop_assert_eq!(decode_frame(&buf), Some(Frame::Control(entries)));
            }

            #[test]
            fn prop_digest_roundtrip(
                n in 0usize..MAX_DIGEST_BATCH,
                origin in 0u64..u64::MAX,
                node_inc in 0u64..u64::MAX,
                round in 0u64..u64::MAX,
                at in -1.0e12f64..1.0e12,
                peers in 0u32..u32::MAX / 2,
                full in proptest::bool::ANY,
                conformance_ok in proptest::bool::ANY,
            ) {
                let frame = DigestFrame {
                    origin,
                    node_incarnation: node_inc,
                    round,
                    at,
                    summary: DigestSummary {
                        peers,
                        suspected: peers / 3,
                        degraded: peers / 7,
                        conformance_ok,
                    },
                    full,
                    entries: (0..n)
                        .map(|k| DigestEntry {
                            peer: origin.wrapping_add(k as u64),
                            incarnation: node_inc.wrapping_add(k as u64),
                            trusted: k % 2 == 0,
                            degraded: k % 3 == 0,
                        })
                        .collect(),
                };
                let buf = encode_digest(&frame);
                prop_assert_eq!(buf.len(), HEADER_LEN_DIGEST + n * DIGEST_ENTRY_LEN);
                prop_assert_eq!(decode_frame(&buf), Some(Frame::Digest(frame)));
                // A heartbeat receiver rejects (and counts) gossip frames.
                prop_assert_eq!(decode_batch(&buf), None);
            }

            /// The hardening guarantee: the decoder is total. *Any* byte
            /// string — random, truncated, hostile — either decodes to a
            /// well-formed frame or returns `None`; it never panics and
            /// never indexes out of bounds.
            #[test]
            fn prop_decode_never_panics_on_arbitrary_bytes(
                raw in proptest::collection::vec(0u16..256, 0..2048),
            ) {
                let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
                let _ = decode_frame(&bytes);
                let _ = decode_batch(&bytes);
            }

            /// Same guarantee when the input *looks* legitimate: a valid
            /// frame of every framing, arbitrarily mutated and truncated,
            /// must decode or reject — never panic.
            #[test]
            fn prop_decode_never_panics_on_corrupted_frames(
                n in 1usize..8,
                idx in 0usize..260,
                flip in 0u16..256,
                keep in 0usize..300,
                which in 0usize..7,
            ) {
                let flip = flip as u8;
                let mut buf = match which {
                    0 => encode_batch(&sample(n)),
                    1 => encode_batch_v1(&sample(n)),
                    2 => encode_batch_v3(&sample(n)),
                    3 => encode_control(&control_sample(n)),
                    4 => encode_repair(&repair_sample()),
                    5 => encode_relay(7, 1, &encode_digest(&digest_sample(n))),
                    _ => encode_digest(&digest_sample(n)),
                };
                let idx = idx % buf.len();
                buf[idx] ^= flip;
                buf.truncate(keep.min(buf.len()));
                let _ = decode_frame(&buf);
                let _ = decode_batch(&buf);
            }

            #[test]
            fn prop_header_corruption_rejected(
                n in 1usize..MAX_BATCH,
                ts in -1.0e6f64..1.0e6,
                idx in 0usize..HEADER_LEN,
                flip in 1u8..255,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: k as u64,
                        incarnation: 1,
                        seq: k as u64 + 1,
                        send_time: ts,
                    })
                    .collect();
                let mut buf = encode_batch(&entries);
                buf[idx] ^= flip;
                // Any header flip changes magic, version, or the count.
                // Flipping the version byte changes the expected framing
                // (entry size or the kind byte's position) so the length
                // check rejects; any other flip fails magic/version/count
                // validation outright.
                prop_assert_eq!(decode_batch(&buf), None);
            }

            #[test]
            fn prop_truncation_rejected(
                n in 1usize..MAX_BATCH,
                cut in 1usize..32,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: k as u64,
                        incarnation: 2,
                        seq: k as u64 + 1,
                        send_time: 0.5,
                    })
                    .collect();
                let buf = encode_batch(&entries);
                let cut = cut.min(buf.len() - 1);
                prop_assert_eq!(decode_batch(&buf[..buf.len() - cut]), None);
            }
        }
    }
}
