//! Batched heartbeat wire protocol v1.
//!
//! The single-watch runtime ships one heartbeat per datagram
//! (`fd-runtime::udp`, 20 bytes each). At cluster scale that is one
//! syscall and one UDP header per peer per `η`; here many heartbeats
//! share a datagram:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`1`) |
//! | 3      | 1    | entry count `c` (1..=[`MAX_BATCH`]) |
//! | 4 + 24·k | 8  | entry `k`: `peer_id: u64` LE |
//! | 12 + 24·k | 8 | entry `k`: `seq: u64` LE |
//! | 20 + 24·k | 8 | entry `k`: `send_time: f64` LE |
//!
//! The magic differs from the single-heartbeat magic (`[0xFD, 0xB1]`), so
//! each receiver rejects the other's traffic instead of misparsing it.
//! Decoding is strict: exact length for the declared count, known
//! version, at least one entry, finite timestamps — a stray or corrupted
//! packet yields `None`, never a bogus heartbeat.

use crate::PeerId;

/// Magic bytes opening every batch datagram.
pub const BATCH_MAGIC: [u8; 2] = [0xFD, 0xC1];

/// Version of the batch wire format.
pub const BATCH_WIRE_VERSION: u8 = 1;

/// Size of the batch header: magic, version, entry count.
pub const HEADER_LEN: usize = 4;

/// Size of one encoded heartbeat entry: `peer + seq + send_time`.
pub const ENTRY_LEN: usize = 24;

/// Most entries per datagram: `HEADER_LEN + MAX_BATCH · ENTRY_LEN`
/// = 1468 bytes, under the 1472-byte UDP payload of a 1500-byte
/// Ethernet MTU (no IP fragmentation).
pub const MAX_BATCH: usize = 61;

/// One peer's heartbeat inside a batch: which peer, which `mᵢ`, and the
/// sender-clock timestamp `S` of §5.2 (NFD-E ignores it; estimators that
/// assume synchronized clocks may use it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatEntry {
    /// The monitored peer this heartbeat vouches for.
    pub peer: PeerId,
    /// Sequence number `i` of `mᵢ`, starting at 1.
    pub seq: u64,
    /// Send timestamp on the sender's clock, seconds.
    pub send_time: f64,
}

/// Encodes a batch of heartbeat entries into one datagram.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH`] — callers
/// chunk before encoding.
pub fn encode_batch(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH,
        "batch must hold 1..={MAX_BATCH} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + entries.len() * ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

/// Decodes a batch datagram.
///
/// Returns `None` for anything that is not exactly one well-formed
/// current-version batch: short header, wrong magic, unknown version,
/// zero entries, a length that disagrees with the declared count, or any
/// non-finite timestamp.
pub fn decode_batch(buf: &[u8]) -> Option<Vec<HeartbeatEntry>> {
    if buf.len() < HEADER_LEN || buf[..2] != BATCH_MAGIC || buf[2] != BATCH_WIRE_VERSION {
        return None;
    }
    let count = buf[3] as usize;
    if count == 0 || count > MAX_BATCH || buf.len() != HEADER_LEN + count * ENTRY_LEN {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for k in 0..count {
        let base = HEADER_LEN + k * ENTRY_LEN;
        let peer = u64::from_le_bytes(buf[base..base + 8].try_into().ok()?);
        let seq = u64::from_le_bytes(buf[base + 8..base + 16].try_into().ok()?);
        let send_time = f64::from_le_bytes(buf[base + 16..base + 24].try_into().ok()?);
        if !send_time.is_finite() {
            return None;
        }
        entries.push(HeartbeatEntry { peer, seq, send_time });
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<HeartbeatEntry> {
        (0..n)
            .map(|k| HeartbeatEntry {
                peer: k as u64 * 7 + 1,
                seq: k as u64 + 1,
                send_time: 0.05 * (k as f64 + 1.0),
            })
            .collect()
    }

    #[test]
    fn roundtrips_single_and_full_batches() {
        for n in [1, 2, 8, MAX_BATCH] {
            let entries = sample(n);
            let buf = encode_batch(&entries);
            assert_eq!(buf.len(), HEADER_LEN + n * ENTRY_LEN);
            assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
        }
    }

    #[test]
    fn rejects_foreign_and_malformed_headers() {
        let good = encode_batch(&sample(3));
        assert!(decode_batch(&good).is_some());

        // The single-heartbeat protocol's magic must not decode as a batch.
        let mut other = good.clone();
        other[..2].copy_from_slice(&fd_runtime::HEARTBEAT_MAGIC);
        assert_eq!(decode_batch(&other), None);

        let mut future = good.clone();
        future[2] = BATCH_WIRE_VERSION + 1;
        assert_eq!(decode_batch(&future), None);

        let mut zero = good.clone();
        zero[3] = 0;
        assert_eq!(decode_batch(&zero), None);

        let mut wrong_count = good.clone();
        wrong_count[3] = 4; // claims one more entry than present
        assert_eq!(decode_batch(&wrong_count), None);

        assert_eq!(decode_batch(&[]), None);
        assert_eq!(decode_batch(&good[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn rejects_non_finite_timestamps() {
        let mut buf = encode_batch(&sample(2));
        let base = HEADER_LEN + ENTRY_LEN + 16; // second entry's send_time
        buf[base..base + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_empty() {
        encode_batch(&[]);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_oversize() {
        encode_batch(&sample(MAX_BATCH + 1));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn prop_roundtrip(
                n in 1usize..MAX_BATCH,
                peer0 in 0u64..u64::MAX,
                seq0 in 0u64..u64::MAX,
                ts in -1.0e12f64..1.0e12,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: peer0.wrapping_add(k as u64),
                        seq: seq0.wrapping_add(k as u64),
                        send_time: ts + k as f64,
                    })
                    .collect();
                let buf = encode_batch(&entries);
                prop_assert_eq!(decode_batch(&buf), Some(entries));
            }

            #[test]
            fn prop_header_corruption_rejected(
                n in 1usize..MAX_BATCH,
                ts in -1.0e6f64..1.0e6,
                idx in 0usize..HEADER_LEN,
                flip in 1u8..255,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry { peer: k as u64, seq: k as u64 + 1, send_time: ts })
                    .collect();
                let mut buf = encode_batch(&entries);
                buf[idx] ^= flip;
                // Any header flip changes magic, version, or the count —
                // all must reject (a flipped count mismatches the length).
                prop_assert_eq!(decode_batch(&buf), None);
            }

            #[test]
            fn prop_truncation_rejected(
                n in 1usize..MAX_BATCH,
                cut in 1usize..24,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry { peer: k as u64, seq: k as u64 + 1, send_time: 0.5 })
                    .collect();
                let buf = encode_batch(&entries);
                let cut = cut.min(buf.len() - 1);
                prop_assert_eq!(decode_batch(&buf[..buf.len() - cut]), None);
            }
        }
    }
}
