//! Batched heartbeat wire protocol (v2, decodes v1).
//!
//! The single-watch runtime ships one heartbeat per datagram
//! (`fd-runtime::udp`, 20 bytes each). At cluster scale that is one
//! syscall and one UDP header per peer per `η`; here many heartbeats
//! share a datagram:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `[0xFD, 0xC1]` |
//! | 2      | 1    | version (`2`) |
//! | 3      | 1    | entry count `c` (1..=[`MAX_BATCH`]) |
//! | 4 + 32·k | 8  | entry `k`: `peer_id: u64` LE |
//! | 12 + 32·k | 8 | entry `k`: `incarnation: u64` LE |
//! | 20 + 32·k | 8 | entry `k`: `seq: u64` LE |
//! | 28 + 32·k | 8 | entry `k`: `send_time: f64` LE |
//!
//! Version 2 adds the sender's *incarnation* to every entry so receivers
//! in the crash-recovery model can reject heartbeats from a previous
//! life of the same process (a datagram delayed in flight across a
//! crash must not refresh trust in the restarted peer). Version 1
//! frames — 24-byte entries without the incarnation — still decode,
//! with incarnation pinned to `0`: a mixed-version cluster keeps
//! working during a rolling upgrade, and v1 senders are simply treated
//! as processes that never restart. Encoding always emits v2.
//!
//! The magic differs from the single-heartbeat magic (`[0xFD, 0xB1]`), so
//! each receiver rejects the other's traffic instead of misparsing it.
//! Decoding is strict: exact length for the declared count and version,
//! known version, at least one entry, finite timestamps — a stray or
//! corrupted packet yields `None`, never a bogus heartbeat.

use crate::PeerId;

/// Magic bytes opening every batch datagram.
pub const BATCH_MAGIC: [u8; 2] = [0xFD, 0xC1];

/// Version of the batch wire format emitted by [`encode_batch`].
pub const BATCH_WIRE_VERSION: u8 = 2;

/// The previous wire version, still accepted by [`decode_batch`]:
/// 24-byte entries with no incarnation field (decoded as incarnation 0).
pub const BATCH_WIRE_VERSION_V1: u8 = 1;

/// Size of the batch header: magic, version, entry count.
pub const HEADER_LEN: usize = 4;

/// Size of one encoded v2 heartbeat entry:
/// `peer + incarnation + seq + send_time`.
pub const ENTRY_LEN: usize = 32;

/// Size of one encoded v1 heartbeat entry: `peer + seq + send_time`.
pub const ENTRY_LEN_V1: usize = 24;

/// Most entries per datagram: `HEADER_LEN + MAX_BATCH · ENTRY_LEN`
/// = 1444 bytes, under the 1472-byte UDP payload of a 1500-byte
/// Ethernet MTU (no IP fragmentation).
pub const MAX_BATCH: usize = 45;

/// Most entries per v1 datagram (61·24 + 4 = 1468 bytes). A v1 frame
/// may legally carry more entries than [`MAX_BATCH`].
pub const MAX_BATCH_V1: usize = 61;

/// One peer's heartbeat inside a batch: which peer, which life of that
/// peer, which `mᵢ`, and the sender-clock timestamp `S` of §5.2 (NFD-E
/// ignores it; estimators that assume synchronized clocks may use it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatEntry {
    /// The monitored peer this heartbeat vouches for.
    pub peer: PeerId,
    /// The sender's incarnation — bumped on every recovery from a
    /// crash, `0` for processes that never persist one (and for all
    /// heartbeats decoded from v1 frames).
    pub incarnation: u64,
    /// Sequence number `i` of `mᵢ`, starting at 1 within an incarnation.
    pub seq: u64,
    /// Send timestamp on the sender's clock, seconds.
    pub send_time: f64,
}

/// Encodes a batch of heartbeat entries into one v2 datagram.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH`] — callers
/// chunk before encoding.
pub fn encode_batch(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH,
        "batch must hold 1..={MAX_BATCH} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + entries.len() * ENTRY_LEN);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.incarnation.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

/// Decodes a batch datagram (current v2 or legacy v1 framing).
///
/// Returns `None` for anything that is not exactly one well-formed
/// batch: short header, wrong magic, unknown version, zero entries, a
/// length that disagrees with the declared count for that version, or
/// any non-finite timestamp. v1 entries decode with `incarnation: 0`.
pub fn decode_batch(buf: &[u8]) -> Option<Vec<HeartbeatEntry>> {
    if buf.len() < HEADER_LEN || buf[..2] != BATCH_MAGIC {
        return None;
    }
    let (entry_len, max_batch, with_incarnation) = match buf[2] {
        BATCH_WIRE_VERSION => (ENTRY_LEN, MAX_BATCH, true),
        BATCH_WIRE_VERSION_V1 => (ENTRY_LEN_V1, MAX_BATCH_V1, false),
        _ => return None,
    };
    let count = buf[3] as usize;
    if count == 0 || count > max_batch || buf.len() != HEADER_LEN + count * entry_len {
        return None;
    }
    let mut entries = Vec::with_capacity(count);
    for k in 0..count {
        let mut base = HEADER_LEN + k * entry_len;
        let mut field = || {
            let bytes: [u8; 8] = buf[base..base + 8].try_into().unwrap();
            base += 8;
            bytes
        };
        let peer = u64::from_le_bytes(field());
        let incarnation = if with_incarnation {
            u64::from_le_bytes(field())
        } else {
            0
        };
        let seq = u64::from_le_bytes(field());
        let send_time = f64::from_le_bytes(field());
        if !send_time.is_finite() {
            return None;
        }
        entries.push(HeartbeatEntry {
            peer,
            incarnation,
            seq,
            send_time,
        });
    }
    Some(entries)
}

/// Encodes a batch in the legacy v1 framing (no incarnation field).
///
/// Production senders always emit v2; this exists so tests — and any
/// interop harness — can produce the frames an un-upgraded sender
/// would, and check that [`decode_batch`] still accepts them.
///
/// # Panics
///
/// Panics if `entries` is empty or longer than [`MAX_BATCH_V1`].
pub fn encode_batch_v1(entries: &[HeartbeatEntry]) -> Vec<u8> {
    assert!(
        !entries.is_empty() && entries.len() <= MAX_BATCH_V1,
        "v1 batch must hold 1..={MAX_BATCH_V1} entries, got {}",
        entries.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + entries.len() * ENTRY_LEN_V1);
    buf.extend_from_slice(&BATCH_MAGIC);
    buf.push(BATCH_WIRE_VERSION_V1);
    buf.push(entries.len() as u8);
    for e in entries {
        buf.extend_from_slice(&e.peer.to_le_bytes());
        buf.extend_from_slice(&e.seq.to_le_bytes());
        buf.extend_from_slice(&e.send_time.to_le_bytes());
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<HeartbeatEntry> {
        (0..n)
            .map(|k| HeartbeatEntry {
                peer: k as u64 * 7 + 1,
                incarnation: k as u64 % 3,
                seq: k as u64 + 1,
                send_time: 0.05 * (k as f64 + 1.0),
            })
            .collect()
    }

    #[test]
    fn roundtrips_single_and_full_batches() {
        for n in [1, 2, 8, MAX_BATCH] {
            let entries = sample(n);
            let buf = encode_batch(&entries);
            assert_eq!(buf.len(), HEADER_LEN + n * ENTRY_LEN);
            assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
        }
    }

    #[test]
    fn v1_frames_decode_with_zero_incarnation() {
        // A frame from an un-upgraded sender: same entries, v1 framing.
        let mut entries = sample(MAX_BATCH_V1);
        let buf = encode_batch_v1(&entries);
        assert_eq!(buf.len(), HEADER_LEN + MAX_BATCH_V1 * ENTRY_LEN_V1);
        assert_eq!(buf[2], BATCH_WIRE_VERSION_V1);
        for e in &mut entries {
            e.incarnation = 0; // v1 carries no incarnation on the wire
        }
        assert_eq!(decode_batch(&buf).as_deref(), Some(&entries[..]));
    }

    #[test]
    fn v1_length_rules_are_enforced() {
        let buf = encode_batch_v1(&sample(3));
        // Truncating to a valid *v2* length must still reject: the
        // decoder picks entry size by the declared version.
        assert_eq!(decode_batch(&buf[..HEADER_LEN + 2 * ENTRY_LEN_V1]), None);
        let mut wrong_count = buf.clone();
        wrong_count[3] = 4;
        assert_eq!(decode_batch(&wrong_count), None);
    }

    #[test]
    fn rejects_foreign_and_malformed_headers() {
        let good = encode_batch(&sample(3));
        assert!(decode_batch(&good).is_some());

        // The single-heartbeat protocol's magic must not decode as a batch.
        let mut other = good.clone();
        other[..2].copy_from_slice(&fd_runtime::HEARTBEAT_MAGIC);
        assert_eq!(decode_batch(&other), None);

        let mut future = good.clone();
        future[2] = BATCH_WIRE_VERSION + 1;
        assert_eq!(decode_batch(&future), None);

        let mut zero = good.clone();
        zero[3] = 0;
        assert_eq!(decode_batch(&zero), None);

        let mut wrong_count = good.clone();
        wrong_count[3] = 4; // claims one more entry than present
        assert_eq!(decode_batch(&wrong_count), None);

        assert_eq!(decode_batch(&[]), None);
        assert_eq!(decode_batch(&good[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn rejects_non_finite_timestamps() {
        let mut buf = encode_batch(&sample(2));
        let base = HEADER_LEN + ENTRY_LEN + 24; // second entry's send_time
        buf[base..base + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_batch(&buf), None);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_empty() {
        encode_batch(&[]);
    }

    #[test]
    #[should_panic(expected = "batch must hold")]
    fn encode_rejects_oversize() {
        encode_batch(&sample(MAX_BATCH + 1));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn prop_roundtrip(
                n in 1usize..MAX_BATCH,
                peer0 in 0u64..u64::MAX,
                inc0 in 0u64..u64::MAX,
                seq0 in 0u64..u64::MAX,
                ts in -1.0e12f64..1.0e12,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: peer0.wrapping_add(k as u64),
                        incarnation: inc0.wrapping_add(k as u64),
                        seq: seq0.wrapping_add(k as u64),
                        send_time: ts + k as f64,
                    })
                    .collect();
                let buf = encode_batch(&entries);
                prop_assert_eq!(buf.len(), HEADER_LEN + n * ENTRY_LEN);
                prop_assert_eq!(decode_batch(&buf), Some(entries));
            }

            #[test]
            fn prop_v1_roundtrip(
                n in 1usize..MAX_BATCH_V1,
                peer0 in 0u64..u64::MAX,
                seq0 in 0u64..u64::MAX,
                ts in -1.0e12f64..1.0e12,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: peer0.wrapping_add(k as u64),
                        incarnation: 0,
                        seq: seq0.wrapping_add(k as u64),
                        send_time: ts + k as f64,
                    })
                    .collect();
                let buf = encode_batch_v1(&entries);
                prop_assert_eq!(decode_batch(&buf), Some(entries));
            }

            #[test]
            fn prop_header_corruption_rejected(
                n in 1usize..MAX_BATCH,
                ts in -1.0e6f64..1.0e6,
                idx in 0usize..HEADER_LEN,
                flip in 1u8..255,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: k as u64,
                        incarnation: 1,
                        seq: k as u64 + 1,
                        send_time: ts,
                    })
                    .collect();
                let mut buf = encode_batch(&entries);
                buf[idx] ^= flip;
                // Any header flip changes magic, version, or the count.
                // Flipping version to v1 changes the expected entry size
                // (32 → 24 bytes) so the length check rejects; any other
                // flip fails magic/version/count validation outright.
                prop_assert_eq!(decode_batch(&buf), None);
            }

            #[test]
            fn prop_truncation_rejected(
                n in 1usize..MAX_BATCH,
                cut in 1usize..32,
            ) {
                let entries: Vec<_> = (0..n)
                    .map(|k| HeartbeatEntry {
                        peer: k as u64,
                        incarnation: 2,
                        seq: k as u64 + 1,
                        send_time: 0.5,
                    })
                    .collect();
                let buf = encode_batch(&entries);
                let cut = cut.min(buf.len() - 1);
                prop_assert_eq!(decode_batch(&buf[..buf.len() - cut]), None);
            }
        }
    }
}
