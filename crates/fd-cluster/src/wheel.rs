//! Hashed timer wheel for freshness-point expirations.
//!
//! Every NFD-E instance needs a timer at its next freshness point `τᵢ`
//! (§6.3): if no fresh heartbeat arrives by then, the peer must be
//! suspected. One timer thread per peer is O(N) threads; a timer wheel
//! makes it O(1): deadlines are bucketed into `slots` coarse buckets of
//! `tick` seconds each (hashing the deadline's tick number modulo the
//! slot count), and a single ticker sweeps the buckets in time order.
//!
//! The wheel does **lazy cancellation**: entries are never removed when a
//! peer's deadline moves or the peer leaves — instead each entry carries
//! the peer's registration `gen`eration, and the caller discards expired
//! entries whose generation no longer matches the registry. This keeps
//! `schedule` O(1) with no search.
//!
//! Granularity: an entry fires at the first sweep whose `now` reaches its
//! `due`, so expiry detection lags a true deadline by at most one `tick`
//! plus the ticker's scheduling jitter — the wheel's contribution to the
//! detection-time bound `T_D`.

use crate::PeerId;

/// A scheduled freshness-point expiration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerEntry {
    /// Absolute due time, seconds on the cluster clock.
    pub due: f64,
    /// The peer whose freshness point this is.
    pub peer: PeerId,
    /// Registration generation at scheduling time; stale generations are
    /// discarded by the caller (lazy cancellation).
    pub gen: u64,
}

/// A hashed timer wheel: `slots` buckets of `tick` seconds each.
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick: f64,
    /// Absolute tick number the wheel has swept through (inclusive).
    cursor_tick: u64,
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel with `slots` buckets of `tick` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `tick` is not finite and positive.
    pub fn new(slots: usize, tick: f64) -> Self {
        assert!(slots > 0, "wheel needs at least one slot");
        assert!(
            tick.is_finite() && tick > 0.0,
            "tick must be finite and positive, got {tick}"
        );
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            tick,
            cursor_tick: 0,
            len: 0,
        }
    }

    /// Bucket resolution, seconds.
    pub fn tick(&self) -> f64 {
        self.tick
    }

    /// Number of buckets.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently scheduled (including lazily-cancelled ones that
    /// have not yet been swept).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_no(&self, t: f64) -> u64 {
        (t.max(0.0) / self.tick) as u64
    }

    /// Schedules an expiration at absolute time `due`. A `due` already in
    /// the past is clamped to the current cursor so it fires on the next
    /// sweep rather than waiting a full rotation.
    pub fn schedule(&mut self, due: f64, peer: PeerId, gen: u64) {
        let tn = self.tick_no(due).max(self.cursor_tick);
        let idx = (tn % self.slots.len() as u64) as usize;
        self.slots[idx].push(TimerEntry { due, peer, gen });
        self.len += 1;
    }

    /// Sweeps the wheel up to `now`, moving every entry with `due ≤ now`
    /// into `expired` (in no particular order). Work is bounded by one
    /// full rotation: a `now` that jumps many rotations ahead visits each
    /// bucket once, not once per skipped rotation. `now` earlier than the
    /// previous sweep is a no-op (local time is monotone).
    pub fn advance(&mut self, now: f64, expired: &mut Vec<TimerEntry>) {
        let target = self.tick_no(now);
        if target < self.cursor_tick {
            return;
        }
        let n = self.slots.len() as u64;
        // Visit buckets cursor..=target, capped at one full rotation: past
        // that, every bucket has been seen and rescanning finds nothing new.
        let steps = (target - self.cursor_tick).min(n);
        for i in 0..=steps {
            let slot = &mut self.slots[((self.cursor_tick + i) % n) as usize];
            let mut j = 0;
            while j < slot.len() {
                if slot[j].due <= now {
                    expired.push(slot.swap_remove(j));
                    self.len -= 1;
                } else {
                    j += 1;
                }
            }
        }
        self.cursor_tick = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel, now: f64) -> Vec<TimerEntry> {
        let mut out = Vec::new();
        w.advance(now, &mut out);
        out
    }

    #[test]
    fn fires_in_time_order_across_sweeps() {
        let mut w = TimerWheel::new(8, 0.01);
        w.schedule(0.035, 1, 0);
        w.schedule(0.015, 2, 0);
        w.schedule(0.095, 3, 0);
        assert_eq!(w.len(), 3);

        let fired = drain(&mut w, 0.02);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].peer, 2);

        let fired = drain(&mut w, 0.04);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].peer, 1);

        // 0.095 shares a bucket rotation with earlier ticks but must not
        // fire early.
        assert!(drain(&mut w, 0.08).is_empty());
        let fired = drain(&mut w, 0.1);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].peer, 3);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_fires_on_next_sweep() {
        let mut w = TimerWheel::new(16, 0.01);
        assert!(drain(&mut w, 1.0).is_empty());
        // Deadline already in the past: clamps to the cursor, fires at the
        // very next sweep instead of waiting a rotation.
        w.schedule(0.5, 7, 3);
        let fired = drain(&mut w, 1.0);
        assert_eq!(fired, vec![TimerEntry { due: 0.5, peer: 7, gen: 3 }]);
    }

    #[test]
    fn future_rotation_entries_survive_a_sweep_of_their_bucket() {
        let mut w = TimerWheel::new(4, 0.01);
        // Same bucket (tick 1 and tick 5 mod 4), one rotation apart.
        w.schedule(0.015, 1, 0);
        w.schedule(0.055, 2, 0);
        let fired = drain(&mut w, 0.02);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].peer, 1);
        assert_eq!(w.len(), 1);
        let fired = drain(&mut w, 0.06);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].peer, 2);
    }

    #[test]
    fn clock_jump_collects_everything_in_one_bounded_sweep() {
        let mut w = TimerWheel::new(8, 0.001);
        for p in 0..100u64 {
            w.schedule(0.001 * p as f64, p, 0);
        }
        // Jump thousands of rotations ahead: every entry fires, exactly once.
        let mut fired = drain(&mut w, 1e6);
        fired.sort_by_key(|e| e.peer);
        assert_eq!(fired.len(), 100);
        assert!(fired.iter().enumerate().all(|(i, e)| e.peer == i as u64));
        assert!(w.is_empty());
        assert!(drain(&mut w, 1e6 + 1.0).is_empty());
    }

    #[test]
    fn time_going_backward_is_a_no_op() {
        let mut w = TimerWheel::new(8, 0.01);
        w.schedule(0.5, 1, 0);
        assert!(drain(&mut w, 0.4).is_empty());
        assert!(drain(&mut w, 0.1).is_empty());
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, 0.5).len(), 1);
    }

    #[test]
    fn generation_values_around_wraparound_stay_distinct() {
        // The wheel itself is generation-agnostic — it must carry the
        // exact gen through, including the extremes a wrapping counter
        // produces, so the caller's gen-mismatch cancellation works on
        // both sides of u64 wraparound.
        let mut w = TimerWheel::new(8, 0.01);
        w.schedule(0.015, 1, u64::MAX - 1);
        w.schedule(0.015, 1, u64::MAX);
        w.schedule(0.015, 1, 0); // post-wrap generation for the same peer
        let mut fired = drain(&mut w, 0.02);
        fired.sort_by_key(|e| e.gen);
        let gens: Vec<u64> = fired.iter().map(|e| e.gen).collect();
        assert_eq!(gens, vec![0, u64::MAX - 1, u64::MAX]);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn rejects_zero_slots() {
        TimerWheel::new(0, 0.01);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn rejects_bad_tick() {
        TimerWheel::new(8, 0.0);
    }
}
