//! Cluster-layer scenarios: randomized, deterministic drives of the
//! [`ClusterMonitor`] control plane, judged by lifecycle oracles.
//!
//! The engine scenarios check the *detector*; these check the
//! *membership layer around it*. Each scenario drives a monitor
//! entirely through its deterministic entry points
//! ([`record_at`](ClusterMonitor::record_at) for heartbeats at explicit
//! cluster-clock times, [`run_control_round`](ClusterMonitor::run_control_round)
//! for the adaptive control plane), drains its
//! [`MembershipEvent`](fd_cluster::MembershipEvent) stream into an
//! [`EventLog`], and returns a [`ClusterRecord`]. The oracles assert
//! structural invariants that must hold whatever the randomized load
//! did:
//!
//! * [`GhostEventOracle`] — removed peers emit no further events;
//! * [`DegradePromoteOracle`] — per peer, `Degraded`/`Promoted`
//!   strictly alternate starting with `Degraded`.
//!
//! Both checks are order-insensitive across peers and timing-agnostic,
//! so the wall-clock background ticker (which also emits `Suspected`
//! events) cannot make a correct monitor fail them.

use crate::oracle::{Oracle, Verdict};
use fd_cluster::{
    ClusterConfig, ClusterMonitor, ControlConfig, EventLog, PeerConfig,
};
use fd_core::Heartbeat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One completed cluster drive.
#[derive(Debug)]
pub struct ClusterRecord {
    /// The seed it was generated from.
    pub seed: u64,
    /// Everything the monitor published.
    pub log: EventLog,
    /// Peers that were removed mid-run.
    pub removed: Vec<u64>,
    /// All peers that ever existed.
    pub peers: Vec<u64>,
}

/// Drives one randomized cluster scenario, deterministically per seed.
///
/// `n_peers` peers are registered; heartbeats arrive every second of
/// cluster-clock time with seeded per-phase delays (clean or spiking —
/// spikes push the adaptive control plane into degradation, recoveries
/// pull it back); control rounds run between phases; one randomly
/// chosen peer is removed partway through, after which its heartbeats
/// keep arriving (exactly the stale traffic a buggy registry would
/// resurrect it on).
pub fn run_cluster_scenario(seed: u64, n_peers: u64) -> ClusterRecord {
    assert!(n_peers >= 2, "scenario removes one peer and keeps driving the rest");
    let mut rng = StdRng::seed_from_u64(seed);

    let monitor = ClusterMonitor::spawn(ClusterConfig {
        // A huge tick keeps the wall-clock ticker from expiring
        // freshness mid-drive; all timing below is explicit.
        control: ControlConfig {
            period: 1e9,
            short_delay_window: 8,
            long_delay_window: 24,
            min_delay_samples: 4,
            min_eta: 0.5,
            promote_after: 2,
            ..ControlConfig::default()
        },
        ..ClusterConfig::default()
    })
    .expect("spawn monitor");
    let rx = monitor.subscribe();

    let req = fd_metrics::QosRequirements::new(4.0, 1e9, 2.0).expect("valid requirements");
    let peers: Vec<u64> = (1..=n_peers).collect();
    for &p in &peers {
        monitor
            .add_peer(p, PeerConfig::new(1.0, 3.0).requirements(req))
            .expect("register peer");
    }

    let removed_peer = peers[rng.random_range(0..peers.len())];
    let mut removed = Vec::new();
    let mut seq = 0u64;

    let phases = rng.random_range(3..=6usize);
    for phase in 0..phases {
        // Each phase: a delay regime (clean or spiking) held for a
        // batch of beats, then a control round.
        let spike = rng.random_bool(0.4);
        let delay = if spike {
            rng.random_range(3.5..6.0)
        } else {
            rng.random_range(0.02..0.2)
        };
        let beats = rng.random_range(8..=20usize);
        for _ in 0..beats {
            seq += 1;
            let now = seq as f64 + delay;
            for &p in &peers {
                if removed.contains(&p) && p == removed_peer {
                    // Stale traffic for the removed peer: the monitor
                    // must ignore it (record on an unknown peer is a
                    // no-op), emitting nothing.
                    monitor.record_at(p, now, Heartbeat::new(seq, seq as f64));
                } else if !removed.contains(&p) {
                    monitor.record_at(p, now, Heartbeat::new(seq, seq as f64));
                }
            }
        }
        monitor.run_control_round();

        // Halfway through, drop one peer; its traffic keeps flowing.
        if phase == phases / 2 {
            assert!(monitor.remove_peer(removed_peer), "peer registered");
            removed.push(removed_peer);
        }
    }

    let mut log = EventLog::new();
    monitor.shutdown();
    log.drain(&rx);
    ClusterRecord {
        seed,
        log,
        removed,
        peers,
    }
}

/// No events for a peer after its `Removed` event.
#[derive(Debug, Clone, Copy, Default)]
pub struct GhostEventOracle;

impl Oracle<ClusterRecord> for GhostEventOracle {
    fn name(&self) -> &'static str {
        "no-ghost-events"
    }

    fn judge(&self, rec: &ClusterRecord) -> Verdict {
        if rec.removed.is_empty() {
            return Verdict::Undecided;
        }
        for &p in &rec.removed {
            let ghosts = rec.log.ghost_events_after_remove(p);
            if !ghosts.is_empty() {
                return Verdict::Reject(format!(
                    "peer {p} emitted {} events after removal (first: {:?}, seed {})",
                    ghosts.len(),
                    ghosts[0].change,
                    rec.seed
                ));
            }
        }
        Verdict::Accept
    }
}

/// `Degraded`/`Promoted` strictly alternate per peer, starting with
/// `Degraded`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegradePromoteOracle;

impl Oracle<ClusterRecord> for DegradePromoteOracle {
    fn name(&self) -> &'static str {
        "degrade-promote-alternation"
    }

    fn judge(&self, rec: &ClusterRecord) -> Verdict {
        let mut saw_any = false;
        for &p in &rec.peers {
            if let Err(ev) = rec.log.validate_degrade_promote(p) {
                return Verdict::Reject(format!(
                    "peer {p}: out-of-order {:?} at {} (seed {})",
                    ev.change, ev.at, rec.seed
                ));
            }
            saw_any |= rec.log.for_peer(p).iter().any(|e| {
                matches!(
                    e.change,
                    fd_cluster::MembershipChange::Degraded | fd_cluster::MembershipChange::Promoted
                )
            });
        }
        if saw_any {
            Verdict::Accept
        } else {
            // No degradation ever triggered: alternation is vacuous.
            Verdict::Undecided
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_scenarios_satisfy_both_oracles() {
        let ghost = GhostEventOracle;
        let dp = DegradePromoteOracle;
        let mut dp_decided = 0;
        for seed in 0..6 {
            let rec = run_cluster_scenario(seed, 3);
            assert_ne!(
                ghost.judge(&rec),
                Verdict::Undecided,
                "every scenario removes a peer"
            );
            assert!(
                !ghost.judge(&rec).is_reject(),
                "seed {seed}: {:?}",
                ghost.judge(&rec)
            );
            let v = dp.judge(&rec);
            assert!(!v.is_reject(), "seed {seed}: {v:?}");
            if v == Verdict::Accept {
                dp_decided += 1;
            }
        }
        // The spiky phases must have exercised degradation at least once
        // across the seed sweep, or the oracle never bites.
        assert!(dp_decided > 0, "no scenario ever degraded a peer");
    }

    #[test]
    fn cluster_scenarios_are_deterministic() {
        let a = run_cluster_scenario(9, 3);
        let b = run_cluster_scenario(9, 3);
        // The event streams must agree change-for-change per peer
        // (absolute ordering across peers within an instant is not
        // guaranteed by the channel, but per-peer order is).
        for p in &a.peers {
            let ca: Vec<_> = a.log.for_peer(*p).iter().map(|e| e.change).collect();
            let cb: Vec<_> = b.log.for_peer(*p).iter().map(|e| e.change).collect();
            assert_eq!(ca, cb, "peer {p} event stream diverged");
        }
    }
}
