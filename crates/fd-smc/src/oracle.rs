//! Per-run property oracles.
//!
//! An [`Oracle`] inspects one completed run and pronounces a
//! [`Verdict`]: the property held ([`Verdict::Accept`]), it was
//! violated ([`Verdict::Reject`] with a reason), or this particular run
//! simply had nothing to say about it ([`Verdict::Undecided`] — e.g. a
//! detection-time oracle on a run with no crash). Undecided runs are
//! excluded from the sequential test rather than counted either way.
//!
//! The oracles shipped here check, per run:
//!
//! * [`AgreementOracle`] — online/batch estimator agreement on every
//!   run: an [`OnlineQos`] tracker replaying the trace must reproduce
//!   the batch [`AccuracyAnalysis`] exactly (the two are independent
//!   implementations of §2's definitions).
//! * [`Theorem1Oracle`] — the paper's Theorem 1 identities on the
//!   observed accuracy metrics of stationary (benign) runs.
//! * [`DetectionOracle`] — the NFD-S detection bound `T_D ≤ η + δ`
//!   (Theorem 5.1's worst case) on runs with a scripted permanent
//!   crash, under *whatever* link faults and clock jumps the scenario
//!   threw: freshness deadlines are schedule-based, so the bound is
//!   robust, and forward clock jumps can only shorten detection.
//! * [`ConformanceOracle`] — on benign runs carrying a requirement
//!   tuple, the configured QoS bounds (`E(T_MR) ≥ T_MR^L` etc.) via
//!   [`Conformance`].

use crate::scenario::RunRecord;
use fd_metrics::{
    detection_time, AccuracyAnalysis, Conformance, DetectionOutcome, OnlineQos,
};

/// What one run said about one property.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The property held on this run.
    Accept,
    /// The property was violated; the string says how.
    Reject(String),
    /// This run contained no evidence either way.
    Undecided,
}

impl Verdict {
    /// `true` for [`Verdict::Reject`].
    pub fn is_reject(&self) -> bool {
        matches!(self, Verdict::Reject(_))
    }
}

/// A per-run property judge over some run context `Ctx` (engine runs
/// use [`RunRecord`]; the cluster harness uses its own record type).
pub trait Oracle<Ctx>: Sync {
    /// Stable property name (report key).
    fn name(&self) -> &'static str;
    /// Judges one run.
    fn judge(&self, ctx: &Ctx) -> Verdict;
    /// Whether the property is a *hard invariant* — one the system
    /// guarantees on every run, so a single counterexample is a bug
    /// regardless of how the SPRT scores the rate. Soft (statistical)
    /// properties — tolerance-banded identities, requirement bounds
    /// under arbitrarily sampled configurations — are expected to fail
    /// occasionally, and only the SPRT's rate decision fails them.
    fn hard(&self) -> bool {
        true
    }
}

/// Exact online/batch estimator agreement, judged on every run.
///
/// The streaming [`OnlineQos`] tracker and the batch
/// [`AccuracyAnalysis`] are independent implementations of §2's metric
/// definitions, so replaying any trace — benign or chaotic, crashed or
/// not — through both must produce identical mistake counts, `P_A`,
/// `λ_M` and interval means to machine precision. This is a hard
/// invariant: one disagreement is an estimator bug.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgreementOracle;

impl Oracle<RunRecord> for AgreementOracle {
    fn name(&self) -> &'static str {
        "online-batch-agreement"
    }

    fn judge(&self, rec: &RunRecord) -> Verdict {
        let trace = &rec.outcome.trace;
        let batch = AccuracyAnalysis::of_trace(trace);
        let online = OnlineQos::of_trace(trace).observed(trace.end());
        if online.s_transitions as usize != batch.mistake_count() {
            return Verdict::Reject(format!(
                "online counted {} mistakes, batch {} (seed {})",
                online.s_transitions,
                batch.mistake_count(),
                rec.scenario.seed
            ));
        }
        let exact = [
            (
                "P_A",
                online.query_accuracy(),
                batch.query_accuracy_probability(),
            ),
            ("lambda_M", online.mistake_rate(), batch.mistake_rate()),
        ];
        for (name, on, off) in exact {
            if (on - off).abs() > 1e-9 * off.abs().max(1.0) {
                return Verdict::Reject(format!(
                    "online {name} = {on} vs batch {off} (seed {})",
                    rec.scenario.seed
                ));
            }
        }
        for (name, on, off) in [
            (
                "E(T_MR)",
                online.mean_mistake_recurrence(),
                batch.mean_mistake_recurrence(),
            ),
            (
                "E(T_M)",
                online.mean_mistake_duration(),
                batch.mean_mistake_duration(),
            ),
            (
                "E(T_G)",
                online.mean_good_period(),
                batch.mean_good_period(),
            ),
        ] {
            match (on, off) {
                (Some(a), Some(b)) if (a - b).abs() > 1e-9 * b.abs().max(1.0) => {
                    return Verdict::Reject(format!(
                        "online {name} = {a} vs batch {b} (seed {})",
                        rec.scenario.seed
                    ));
                }
                (Some(_), Some(_)) | (None, None) => {}
                _ => {
                    return Verdict::Reject(format!(
                        "{name}: one estimator observed an interval, the other did not \
                         (seed {})",
                        rec.scenario.seed
                    ));
                }
            }
        }
        Verdict::Accept
    }
}

/// The Theorem 1 identities on the observed accuracy metrics.
///
/// The identities (`E(T_MR) = E(T_M) + E(T_G)`, `P_A = E(T_G)/E(T_MR)`)
/// hold exactly in steady state; on a finite *stationary* window they
/// hold within sampling noise, so a relative tolerance is applied and
/// only benign (i.i.d. loss/delay) runs with at least `min_cycles`
/// complete mistake cycles are judged — a window cut mid-partition puts
/// one outlier mistake duration at the edge and breaks the telescoping
/// sum, which says nothing about the theorem. A *soft* property: the
/// tolerance band can still be exceeded by legitimate sampling noise,
/// so the SPRT's rate decision is what fails it.
#[derive(Debug, Clone, Copy)]
pub struct Theorem1Oracle {
    /// Relative tolerance for the steady-state identities.
    pub rel_tol: f64,
    /// Minimum complete mistake-recurrence cycles before the identities
    /// are judged (too few cycles ⇒ [`Verdict::Undecided`]).
    pub min_cycles: u64,
}

impl Default for Theorem1Oracle {
    fn default() -> Self {
        Self {
            rel_tol: 0.15,
            min_cycles: 8,
        }
    }
}

impl Oracle<RunRecord> for Theorem1Oracle {
    fn name(&self) -> &'static str {
        "theorem1-identities"
    }

    fn hard(&self) -> bool {
        false
    }

    fn judge(&self, rec: &RunRecord) -> Verdict {
        // Only stationary windows: benign runs, pre-crash portion (the
        // accuracy metrics are defined on failure-free behavior, §2.2).
        if !rec.scenario.benign {
            return Verdict::Undecided;
        }
        let trace = match rec.crash_in_monitor_time() {
            Some(c) => rec.outcome.trace.restrict(rec.outcome.trace.start(), c),
            None => rec.outcome.trace.clone(),
        };
        let online = OnlineQos::of_trace(&trace).observed(trace.end());
        if online.recurrence.count() < self.min_cycles {
            return Verdict::Undecided;
        }
        let report = Conformance::new(self.rel_tol).report(&online);
        if report.checks.is_empty() {
            return Verdict::Undecided;
        }
        if report.passed() {
            Verdict::Accept
        } else {
            Verdict::Reject(format!(
                "{} (seed {})",
                report
                    .failures()
                    .iter()
                    .map(|c| format!("{}: expected {:.4}, observed {:.4}", c.name, c.expected, c.observed))
                    .collect::<Vec<_>>()
                    .join("; "),
                rec.scenario.seed
            ))
        }
    }
}

/// The NFD-S detection bound `T_D ≤ η + δ (+ slack)` on runs with a
/// scripted permanent crash.
#[derive(Debug, Clone, Copy)]
pub struct DetectionOracle {
    /// Absolute slack added to the bound (numerical headroom).
    pub slack: f64,
}

impl Default for DetectionOracle {
    fn default() -> Self {
        Self { slack: 1e-9 }
    }
}

impl Oracle<RunRecord> for DetectionOracle {
    fn name(&self) -> &'static str {
        "detection-bound"
    }

    fn judge(&self, rec: &RunRecord) -> Verdict {
        let Some(crash_mon) = rec.crash_in_monitor_time() else {
            return Verdict::Undecided;
        };
        let s = &rec.scenario;
        let bound = s.spec_eta + s.delta + self.slack;
        match detection_time(&rec.outcome.trace, crash_mon) {
            DetectionOutcome::Detected { elapsed } => {
                if elapsed <= bound {
                    Verdict::Accept
                } else {
                    Verdict::Reject(format!(
                        "T_D = {elapsed:.4} > η + δ = {:.4} (seed {})",
                        s.spec_eta + s.delta,
                        s.seed
                    ))
                }
            }
            // Suspecting at the crash instant: detected with T_D = 0.
            DetectionOutcome::AlreadySuspecting => Verdict::Accept,
            DetectionOutcome::NotDetected => Verdict::Reject(format!(
                "crash at {crash_mon:.4} never detected (seed {})",
                s.seed
            )),
        }
    }
}

/// Configured-requirement conformance on benign runs.
///
/// Judges only runs whose scenario carries a [`QosRequirements`]
/// (benign runs of a spec with requirements attached); everything else
/// is [`Verdict::Undecided`]. The scenario's `(η, δ)` are *not*
/// required to come from the paper's configuration procedure — the
/// oracle simply reports whether the observed QoS met the bounds, and
/// the sequential layer decides whether that happens often enough.
///
/// [`QosRequirements`]: fd_metrics::QosRequirements
#[derive(Debug, Clone, Copy)]
pub struct ConformanceOracle {
    /// Relative tolerance band, as in [`Conformance::new`].
    pub rel_tol: f64,
    /// Minimum complete mistake-recurrence cycles before judging
    /// (a benign run whose detector never erred twice satisfies every
    /// requirement trivially — count it as an accept, not undecided,
    /// when below this threshold but with an observation window).
    pub min_cycles: u64,
}

impl Default for ConformanceOracle {
    fn default() -> Self {
        Self {
            rel_tol: 0.1,
            min_cycles: 1,
        }
    }
}

impl Oracle<RunRecord> for ConformanceOracle {
    fn name(&self) -> &'static str {
        "requirement-conformance"
    }

    // Soft: the sampled (η, δ) were never *configured* to meet the
    // requirements, so an unlucky draw (high loss, heavy tail, tight δ)
    // can legitimately miss a bound; the SPRT decides whether the rate
    // of such misses stays within the hypothesis.
    fn hard(&self) -> bool {
        false
    }

    fn judge(&self, rec: &RunRecord) -> Verdict {
        let Some(req) = rec.scenario.requirements else {
            return Verdict::Undecided;
        };
        let trace = &rec.outcome.trace;
        let online = OnlineQos::of_trace(trace).observed(trace.end());
        if online.recurrence.count() < self.min_cycles {
            // Fewer mistakes than needed to measure recurrence: the
            // detector trivially beats any T_MR^L over this window.
            return Verdict::Accept;
        }
        let report = Conformance::new(self.rel_tol)
            .with_requirements(req)
            .report(&online);
        // Judge the requirement bounds only (names like "E(T_M) <= T_M^U");
        // the Theorem 1 identity checks belong to [`Theorem1Oracle`],
        // which insists on enough cycles for them to be meaningful.
        let bound_failures: Vec<String> = report
            .failures()
            .iter()
            .filter(|c| c.name.contains(">=") || c.name.contains("<="))
            .map(|c| format!("{}: bound {:.4}, observed {:.4}", c.name, c.expected, c.observed))
            .collect();
        if bound_failures.is_empty() {
            Verdict::Accept
        } else {
            Verdict::Reject(format!(
                "{} (seed {})",
                bound_failures.join("; "),
                rec.scenario.seed
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use fd_metrics::QosRequirements;

    fn first_deciding_record(
        spec: &ScenarioSpec,
        oracle: &dyn Oracle<RunRecord>,
        want_accept: bool,
    ) -> Option<(u64, Verdict)> {
        for seed in 0..60 {
            let rec = spec.sample(seed).run();
            let v = oracle.judge(&rec);
            match (&v, want_accept) {
                (Verdict::Accept, true) | (Verdict::Reject(_), false) => {
                    return Some((seed, v));
                }
                _ => {}
            }
        }
        None
    }

    #[test]
    fn agreement_oracle_accepts_chaotic_and_crashed_runs() {
        // The estimators must agree on *any* trace, so sweep the full
        // chaos spec — faults, crashes, clock jumps, every regime.
        let spec = ScenarioSpec {
            benign_fraction: 0.1,
            crash_fraction: 0.5,
            ..ScenarioSpec::broad()
        };
        let oracle = AgreementOracle;
        for seed in 0..40 {
            let rec = spec.sample(seed).run();
            assert_eq!(
                oracle.judge(&rec),
                Verdict::Accept,
                "seed {seed}: online and batch estimators diverged"
            );
        }
    }

    #[test]
    fn detection_oracle_accepts_crash_runs_and_skips_others() {
        let spec = ScenarioSpec {
            benign_fraction: 0.0,
            crash_fraction: 1.0,
            ..ScenarioSpec::broad()
        };
        let oracle = DetectionOracle::default();
        for seed in 0..25 {
            let rec = spec.sample(seed).run();
            assert_eq!(
                oracle.judge(&rec),
                Verdict::Accept,
                "seed {seed}: NFD-S bound must hold under any scripted faults"
            );
        }

        let benign = ScenarioSpec {
            benign_fraction: 1.0,
            ..ScenarioSpec::broad()
        };
        let rec = benign.sample(0).run();
        assert_eq!(oracle.judge(&rec), Verdict::Undecided);
    }

    #[test]
    fn theorem1_oracle_accepts_long_benign_runs() {
        // A lossy benign environment produces plenty of mistake cycles
        // for the identities to bite on.
        let spec = ScenarioSpec {
            benign_fraction: 1.0,
            loss_range: (0.15, 0.25),
            delta_range: (0.1, 0.3),
            horizon: 2000.0,
            ..ScenarioSpec::broad()
        };
        let oracle = Theorem1Oracle::default();
        let hit = first_deciding_record(&spec, &oracle, true);
        assert!(hit.is_some(), "no benign run ever decided the Theorem 1 oracle");
    }

    #[test]
    fn conformance_oracle_needs_requirements() {
        let spec = ScenarioSpec {
            benign_fraction: 1.0,
            ..ScenarioSpec::broad()
        };
        let oracle = ConformanceOracle::default();
        let rec = spec.sample(1).run();
        assert_eq!(oracle.judge(&rec), Verdict::Undecided, "no requirements attached");

        // Loose requirements on a clean link: conformance holds.
        let spec = ScenarioSpec {
            benign_fraction: 1.0,
            loss_range: (0.0, 0.01),
            delta_range: (2.0, 3.0),
            requirements: Some(QosRequirements::new(4.0, 10.0, 2.0).unwrap()),
            ..ScenarioSpec::broad()
        };
        for seed in 0..10 {
            let rec = spec.sample(seed).run();
            assert_eq!(
                oracle.judge(&rec),
                Verdict::Accept,
                "seed {seed}: loose requirements must conform"
            );
        }
    }
}
