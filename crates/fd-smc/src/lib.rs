//! Statistical model checking of the failure-detector stack.
//!
//! The paper proves QoS bounds (Theorem 5's detection-time worst case,
//! Theorem 1's steady-state identities) analytically; this crate checks
//! that the *implementation* honors them under adversity the proofs
//! never mention — burst loss, partitions, delay spikes, crash–recover
//! cycles, restart storms, forward clock jumps, heavy-tailed delay
//! regimes — by statistical model checking (SMC):
//!
//! 1. **Sample** a randomized scenario from a declarative
//!    [`ScenarioSpec`] — deterministic per seed, so any counterexample
//!    replays from two integers ([`scenario`]).
//! 2. **Judge** each completed run with property [`Oracle`]s: the
//!    Theorem 1 identities and online/batch estimator agreement, the
//!    NFD-S detection bound, configured-requirement conformance, and
//!    cluster lifecycle invariants ([`oracle`], [`cluster`]).
//! 3. **Decide** sequentially with Wald's SPRT — "does each property
//!    hold with probability ≥ p₁?" — run by a work-stealing thread
//!    pool, with exact Clopper–Pearson intervals in the report
//!    ([`verifier`], numerics in [`fd_stats::seq`]).
//!
//! The `exp_smc` binary in `fd-bench` (experiment E20) packages all of
//! this behind a CLI with a full mode (≥ 1000 randomized scenarios
//! across the delay regimes) and a `--smoke` mode sized for CI.
//!
//! # Example
//!
//! ```
//! use fd_smc::{run_smc, DetectionOracle, Oracle, RunRecord, ScenarioSpec, SmcConfig};
//!
//! let spec = ScenarioSpec {
//!     crash_fraction: 1.0,
//!     benign_fraction: 0.0,
//!     ..ScenarioSpec::broad()
//! };
//! let oracles: Vec<Box<dyn Oracle<RunRecord>>> =
//!     vec![Box::new(DetectionOracle::default())];
//! let report = run_smc(
//!     &SmcConfig { max_runs: 20, min_runs: 0, threads: 2, ..SmcConfig::standard() },
//!     |seed| spec.sample(seed).run(),
//!     &oracles,
//! );
//! assert!(!report.any_reject());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod federation;
pub mod oracle;
pub mod scenario;
pub mod verifier;

pub use cluster::{run_cluster_scenario, ClusterRecord, DegradePromoteOracle, GhostEventOracle};
pub use federation::{
    run_federation_scenario, run_relay_scenario, FedConvergenceOracle, FedCoverageOracle,
    FedRecord, FedRelayOracle, FedRelayRecord,
};
pub use oracle::{
    AgreementOracle, ConformanceOracle, DetectionOracle, Oracle, Theorem1Oracle, Verdict,
};
pub use scenario::{DelayRegime, FaultMix, RunRecord, Scenario, ScenarioSpec};
pub use verifier::{run_smc, PropertyResult, SmcConfig, SmcReport, MAX_EXAMPLES};
