//! Randomized chaos-scenario generation.
//!
//! A [`ScenarioSpec`] is a *declarative* description of a family of
//! adversarial environments: which delay laws the link may follow, how
//! lossy it may be, which fault kinds may strike and with what
//! propensity. [`ScenarioSpec::sample`] draws one concrete [`Scenario`]
//! from the family — a fully scripted [`FaultPlan`] plus link and
//! detector parameters — **deterministically per seed**: the same
//! `(spec, seed)` pair always yields the same scenario, so every run the
//! statistical model checker makes is replayable from two integers.
//!
//! [`Scenario::run`] executes the scenario through the discrete-event
//! engine ([`fd_sim::run_with_plan`]) against an NFD-S detector and
//! returns the [`RunRecord`] the property oracles judge.

use fd_core::detectors::NfdS;
use fd_metrics::QosRequirements;
use fd_sim::{FaultPlan, Link, LinkFault, RunOptions, RunOutcome, StopCondition};
use fd_stats::dist::{Empirical, Exponential, LogNormal, Pareto};
use fd_stats::DelayDistribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A family of delay laws the scenario generator can draw from.
///
/// The first three are the regimes of the paper's §7 simulation study
/// (exponential) and its heavy-tailed stress variants; `TraceReplay`
/// resamples recorded delays (an [`Empirical`] distribution), letting
/// the harness check the detectors against measured traces rather than
/// closed-form laws.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayRegime {
    /// `D ~ Exp(mean)` — the paper's baseline law.
    Exponential {
        /// Mean delay `E(D)`, seconds.
        mean: f64,
    },
    /// Heavy-tailed Pareto delays with the given mean and tail index.
    Pareto {
        /// Mean delay `E(D)`, seconds.
        mean: f64,
        /// Tail index (`> 1` for a finite mean; smaller = heavier).
        shape: f64,
    },
    /// Log-normal delays, `ln D ~ N(mu, sigma²)`.
    LogNormal {
        /// Location of `ln D`.
        mu: f64,
        /// Scale of `ln D`.
        sigma: f64,
    },
    /// Bootstrap resampling of recorded delay samples.
    TraceReplay {
        /// The recorded delays (seconds, all positive).
        samples: Vec<f64>,
    },
}

impl DelayRegime {
    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DelayRegime::Exponential { .. } => "exponential",
            DelayRegime::Pareto { .. } => "pareto",
            DelayRegime::LogNormal { .. } => "lognormal",
            DelayRegime::TraceReplay { .. } => "trace-replay",
        }
    }

    /// Materializes the delay law.
    ///
    /// # Panics
    ///
    /// Panics if the regime's parameters are invalid (negative mean,
    /// shape ≤ 1, empty or nonpositive samples) — spec bugs, not data.
    pub fn distribution(&self) -> Box<dyn DelayDistribution> {
        match self {
            DelayRegime::Exponential { mean } => {
                Box::new(Exponential::with_mean(*mean).expect("valid exponential mean"))
            }
            DelayRegime::Pareto { mean, shape } => {
                Box::new(Pareto::with_mean(*mean, *shape).expect("valid pareto parameters"))
            }
            DelayRegime::LogNormal { mu, sigma } => {
                Box::new(LogNormal::new(*mu, *sigma).expect("valid log-normal parameters"))
            }
            DelayRegime::TraceReplay { samples } => {
                Box::new(Empirical::from_samples(samples).expect("valid trace samples"))
            }
        }
    }
}

/// Relative propensities of the fault kinds a sampled plan may contain.
///
/// Weights are nonnegative and need not sum to one — each episode's
/// kind is drawn proportionally. A zero weight disables the kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Extra i.i.d. loss window.
    pub loss: f64,
    /// Gilbert–Elliott burst-loss window.
    pub burst_loss: f64,
    /// Full partition window.
    pub partition: f64,
    /// Delay-spike window.
    pub delay_spike: f64,
    /// Crash–recover window (process down, then back).
    pub crash_recover: f64,
    /// Restart storm ([`FaultPlan::restart_storm`]).
    pub restart_storm: f64,
    /// Forward monitor-clock jump.
    pub clock_jump: f64,
}

impl FaultMix {
    /// Every kind equally likely.
    pub fn uniform() -> Self {
        Self {
            loss: 1.0,
            burst_loss: 1.0,
            partition: 1.0,
            delay_spike: 1.0,
            crash_recover: 1.0,
            restart_storm: 1.0,
            clock_jump: 1.0,
        }
    }

    fn weights(&self) -> [f64; 7] {
        [
            self.loss,
            self.burst_loss,
            self.partition,
            self.delay_spike,
            self.crash_recover,
            self.restart_storm,
            self.clock_jump,
        ]
    }

    fn total(&self) -> f64 {
        self.weights().iter().sum()
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        Self::uniform()
    }
}

/// Declarative description of a family of randomized scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Heartbeat period `η`.
    pub eta: f64,
    /// Freshness slack `δ` is drawn uniformly from this range.
    pub delta_range: (f64, f64),
    /// Base link loss `p_L` is drawn uniformly from this range.
    pub loss_range: (f64, f64),
    /// The delay regimes to rotate through (one per scenario, picked
    /// uniformly).
    pub regimes: Vec<DelayRegime>,
    /// Run horizon, seconds of simulated time.
    pub horizon: f64,
    /// Fault-kind propensities.
    pub fault_mix: FaultMix,
    /// Maximum number of scripted fault episodes per scenario (the
    /// actual count is uniform in `0..=max_episodes`, and `0` yields a
    /// benign run even outside `benign_fraction`).
    pub max_episodes: usize,
    /// Fraction of scenarios forced benign (no scripted faults at all)
    /// — these are the runs the conformance-to-requirements oracle can
    /// judge, since the paper's QoS bounds assume the modeled network.
    pub benign_fraction: f64,
    /// Probability that a scenario ends in a *permanent* crash (placed
    /// so the detection-time oracle has room to observe the bound).
    pub crash_fraction: f64,
    /// Requirement tuple the conformance oracle checks benign runs
    /// against, if any.
    pub requirements: Option<QosRequirements>,
}

impl ScenarioSpec {
    /// A broad default family: the three analytic regimes at `E(D)`
    /// comparable to the §7 study, moderate loss, every fault kind
    /// enabled, 20% benign runs and 30% crash runs.
    pub fn broad() -> Self {
        Self {
            eta: 1.0,
            delta_range: (0.5, 3.0),
            loss_range: (0.0, 0.05),
            regimes: vec![
                DelayRegime::Exponential { mean: 0.02 },
                DelayRegime::Pareto {
                    mean: 0.02,
                    shape: 2.5,
                },
                // mu chosen so E(D) = exp(mu + sigma²/2) ≈ 0.02.
                DelayRegime::LogNormal {
                    mu: -4.412,
                    sigma: 0.75,
                },
                DelayRegime::TraceReplay {
                    samples: vec![
                        0.011, 0.013, 0.014, 0.016, 0.018, 0.019, 0.021, 0.024, 0.028, 0.035,
                        0.046, 0.072,
                    ],
                },
            ],
            horizon: 400.0,
            fault_mix: FaultMix::uniform(),
            max_episodes: 3,
            benign_fraction: 0.2,
            crash_fraction: 0.3,
            requirements: None,
        }
    }

    /// Draws one concrete scenario. Deterministic: the same
    /// `(self, seed)` always produces the same scenario.
    ///
    /// # Panics
    ///
    /// Panics on a malformed spec (empty regime list, inverted ranges,
    /// nonpositive horizon or `η`, all-zero fault mix with
    /// `max_episodes > 0`).
    pub fn sample(&self, seed: u64) -> Scenario {
        assert!(!self.regimes.is_empty(), "spec needs at least one delay regime");
        assert!(self.eta > 0.0, "eta must be positive");
        assert!(self.horizon > 0.0, "horizon must be positive");
        assert!(
            self.delta_range.0 > 0.0 && self.delta_range.1 >= self.delta_range.0,
            "invalid delta range"
        );
        assert!(
            (0.0..=1.0).contains(&self.loss_range.0)
                && self.loss_range.1 >= self.loss_range.0
                && self.loss_range.1 <= 1.0,
            "invalid loss range"
        );

        let mut rng = StdRng::seed_from_u64(seed);
        let regime = self.regimes[rng.random_range(0..self.regimes.len())].clone();
        let delta = sample_range(&mut rng, self.delta_range);
        let p_loss = sample_range(&mut rng, self.loss_range);

        let benign = rng.random_bool(self.benign_fraction);
        let crash = !benign && rng.random_bool(self.crash_fraction);

        // The crash (if any) lands in the middle half of the horizon so
        // the detection oracle always has ≥ η + δ of post-crash room,
        // and fault episodes are confined to before it.
        let crash_at = crash.then(|| sample_range(&mut rng, (0.25 * self.horizon, 0.6 * self.horizon)));
        let fault_window_end = crash_at.unwrap_or(0.9 * self.horizon);

        let mut plan = FaultPlan::new(seed);
        if !benign {
            let episodes = rng.random_range(0..=self.max_episodes);
            if episodes > 0 {
                assert!(self.fault_mix.total() > 0.0, "fault mix has no enabled kinds");
                // Episodes live in disjoint, ordered slots of the fault
                // window, so the plan builder's monotonicity invariants
                // (strictly increasing segment starts, non-decreasing
                // event times) hold by construction, and everything ends
                // strictly before the permanent crash.
                let lo = 0.05 * self.horizon;
                let hi = fault_window_end - 2.0 * self.eta;
                if hi > lo {
                    let w = (hi - lo) / episodes as f64;
                    if w >= 6.0 * self.eta {
                        for k in 0..episodes {
                            let s0 = lo + k as f64 * w;
                            plan = sample_episode(
                                plan,
                                &mut rng,
                                &self.fault_mix,
                                s0,
                                s0 + w,
                                self.eta,
                            );
                        }
                    }
                }
            }
        }
        if let Some(c) = crash_at {
            plan = plan.crash(c);
        }

        Scenario {
            seed,
            spec_eta: self.eta,
            delta,
            p_loss,
            regime,
            horizon: self.horizon,
            benign,
            plan,
            requirements: if benign { self.requirements } else { None },
        }
    }
}

fn sample_range(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        return lo;
    }
    rng.random_range(lo..hi)
}

/// Appends one fault episode of a kind drawn from `mix` to the plan,
/// entirely inside the slot `[s0, s1)` (the caller guarantees
/// `s1 − s0 ≥ 6η`, enough room for every kind).
///
/// Link-fault episodes occupy a window inside the slot and hand the
/// link back to nominal before the slot ends; process-event episodes
/// script crash–recover windows, restart storms or clock jumps that
/// likewise finish inside the slot.
fn sample_episode(
    plan: FaultPlan,
    rng: &mut StdRng,
    mix: &FaultMix,
    s0: f64,
    s1: f64,
    eta: f64,
) -> FaultPlan {
    let weights = mix.weights();
    let mut pick = rng.random::<f64>() * mix.total();
    let mut kind = 0;
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            kind = i;
            break;
        }
        pick -= w;
    }
    let start = sample_range(rng, (s0, s0 + 0.25 * (s1 - s0)));
    let max_end = s1 - 0.5 * eta;
    let len = sample_range(rng, (2.0 * eta, max_end - start));
    let end = (start + len).min(max_end);
    match kind {
        0 => plan
            .link_fault(
                start,
                LinkFault::Loss {
                    p: sample_range(rng, (0.1, 0.9)),
                },
            )
            .link_fault(end, LinkFault::Nominal),
        1 => plan
            .link_fault(
                start,
                LinkFault::BurstLoss {
                    p_gb: sample_range(rng, (0.1, 0.6)),
                    p_bg: sample_range(rng, (0.1, 0.6)),
                    loss_good: 0.0,
                    loss_bad: sample_range(rng, (0.5, 1.0)),
                },
            )
            .link_fault(end, LinkFault::Nominal),
        2 => plan
            .link_fault(start, LinkFault::Partition)
            .link_fault(end, LinkFault::Nominal),
        3 => plan
            .link_fault(
                start,
                LinkFault::DelaySpike {
                    extra: sample_range(rng, (0.1, 2.0)) * eta,
                    jitter: sample_range(rng, (0.0, 0.5)) * eta,
                },
            )
            .link_fault(end, LinkFault::Nominal),
        4 => {
            // Crash–recover: down for a stretch inside the slot, then
            // back (slot width ≥ 6η keeps the window positive).
            let down = sample_range(rng, (1.5 * eta, (end - start).max(2.0 * eta)))
                .min(max_end - start);
            plan.crash(start).recover(start + down)
        }
        5 => {
            // Restart storm, with the cycle count cut to what fits
            // before `max_end`; at least one cycle always fits.
            let down = sample_range(rng, (eta, 2.0 * eta));
            let up = sample_range(rng, (2.0 * eta, 3.0 * eta));
            let fit = ((max_end - start) / (down + up)).floor() as usize;
            let cycles = rng.random_range(1..=4usize).min(fit.max(1));
            plan.restart_storm(start, cycles, down, up)
        }
        _ => plan.clock_jump(start, sample_range(rng, (0.5, 3.0)) * eta),
    }
}

/// One fully concrete, replayable scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed it was drawn from.
    pub seed: u64,
    /// Heartbeat period `η` (from the spec).
    pub spec_eta: f64,
    /// Sampled freshness slack `δ`.
    pub delta: f64,
    /// Sampled base link loss `p_L`.
    pub p_loss: f64,
    /// The delay regime in force.
    pub regime: DelayRegime,
    /// Run horizon, seconds.
    pub horizon: f64,
    /// Whether the scenario was forced benign (no scripted faults).
    pub benign: bool,
    /// The scripted fault timeline.
    pub plan: FaultPlan,
    /// Requirements attached for conformance judgment (benign runs
    /// only).
    pub requirements: Option<QosRequirements>,
}

impl Scenario {
    /// The permanent-crash time, if the plan scripts one.
    pub fn final_crash(&self) -> Option<f64> {
        self.plan.final_crash()
    }

    /// Executes the scenario: an NFD-S at `(η, δ)` monitored over the
    /// faulty link for `horizon` seconds of simulated time.
    pub fn run(&self) -> RunRecord {
        let link = Link::new(self.p_loss, self.regime.distribution()).expect("valid link");
        let mut fd = NfdS::new(self.spec_eta, self.delta).expect("valid NFD-S parameters");
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let outcome = fd_sim::run_with_plan(
            &mut fd,
            &RunOptions::failure_free(self.spec_eta, StopCondition::Horizon(self.horizon)),
            link,
            &self.plan,
            &mut rng,
        );
        RunRecord {
            scenario: self.clone(),
            outcome,
        }
    }
}

/// A completed scenario execution: what the oracles judge.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The scenario that produced it.
    pub scenario: Scenario,
    /// The engine's output: the monitor-clock transition trace plus
    /// heartbeat accounting.
    pub outcome: RunOutcome,
}

impl RunRecord {
    /// The scripted permanent crash converted to the monitor clock
    /// (the trace's time base): `c + skew(c)`.
    pub fn crash_in_monitor_time(&self) -> Option<f64> {
        self.scenario
            .final_crash()
            .map(|c| c + self.scenario.plan.clock_skew_at(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let spec = ScenarioSpec::broad();
        for seed in [0u64, 1, 7, 1234, u64::MAX] {
            let a = spec.sample(seed);
            let b = spec.sample(seed);
            assert_eq!(format!("{:?}", a.plan), format!("{:?}", b.plan));
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.p_loss, b.p_loss);
            assert_eq!(a.regime, b.regime);
            assert_eq!(a.benign, b.benign);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = ScenarioSpec::broad();
        let a = spec.sample(1);
        let b = spec.sample(2);
        // δ is a fresh uniform draw per seed; collision would be a
        // seeding bug.
        assert_ne!(a.delta, b.delta);
    }

    #[test]
    fn benign_fraction_one_means_no_faults() {
        let spec = ScenarioSpec {
            benign_fraction: 1.0,
            ..ScenarioSpec::broad()
        };
        for seed in 0..20 {
            let s = spec.sample(seed);
            assert!(s.benign);
            assert!(s.plan.events().is_empty());
            // Only the implicit nominal timeline remains.
            assert!(s
                .plan
                .segments()
                .iter()
                .all(|(_, f)| *f == LinkFault::Nominal));
        }
    }

    #[test]
    fn crash_leaves_detection_room() {
        let spec = ScenarioSpec {
            benign_fraction: 0.0,
            crash_fraction: 1.0,
            ..ScenarioSpec::broad()
        };
        for seed in 0..30 {
            let s = spec.sample(seed);
            let c = s.final_crash().expect("crash forced");
            assert!(
                c + s.spec_eta + s.delta < s.horizon,
                "seed {seed}: crash at {c} too close to horizon"
            );
        }
    }

    #[test]
    fn run_executes_and_traces_in_monitor_time() {
        let spec = ScenarioSpec::broad();
        let rec = spec.sample(3).run();
        let s = &rec.scenario;
        let end_skew = s.plan.clock_skew_at(s.horizon);
        assert!((rec.outcome.trace.end() - (s.horizon + end_skew)).abs() < 1e-9);
        assert!(rec.outcome.heartbeats_sent > 0);
    }
}
