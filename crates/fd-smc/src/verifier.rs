//! Sequential statistical verification: Wald's SPRT over randomized
//! runs, executed by a work-stealing thread pool.
//!
//! For each property the null hypothesis is "the property holds with
//! probability ≤ p₀" and the alternative "≥ p₁" (`p₀ < p₁`); each run's
//! [`Verdict`] feeds every property's [`Sprt`] (undecided runs are
//! skipped). The pool of workers pulls seeds from a shared atomic
//! cursor — no per-thread partitioning, so stragglers (long scenarios)
//! never idle the other workers — and stops when every property has
//! decided (and at least `min_runs` runs completed) or `max_runs` is
//! reached.
//!
//! The final [`SmcReport`] carries, per property: the SPRT decision,
//! trial/success counts, the exact Clopper–Pearson confidence interval
//! on the holding probability, and up to [`MAX_EXAMPLES`] concrete
//! counterexample descriptions (each with its seed — every run is
//! replayable from the spec and the seed alone).

use crate::oracle::{Oracle, Verdict};
use fd_stats::{Sprt, SprtConfig, SprtDecision};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counterexample descriptions kept per property.
pub const MAX_EXAMPLES: usize = 5;

/// How the verifier samples and when it stops.
#[derive(Debug, Clone, Copy)]
pub struct SmcConfig {
    /// Hypothesis test applied to every property.
    pub sprt: SprtConfig,
    /// Confidence level for the Clopper–Pearson intervals.
    pub confidence: f64,
    /// Never stop before this many runs, even if every SPRT decided
    /// (keeps the confidence intervals meaningful).
    pub min_runs: usize,
    /// Hard cap on runs (undecided SPRTs report `Continue`).
    pub max_runs: usize,
    /// Worker threads (`0` = one per available CPU).
    pub threads: usize,
    /// First seed; run `k` uses seed `seed0 + k`.
    pub seed0: u64,
}

impl SmcConfig {
    /// A solid default: H₀ p ≤ 0.95 vs H₁ p ≥ 0.995 at α = β = 1%,
    /// 99% intervals, 1000–5000 runs.
    pub fn standard() -> Self {
        Self {
            sprt: SprtConfig::new(0.95, 0.995, 0.01, 0.01).expect("valid SPRT config"),
            confidence: 0.99,
            min_runs: 1000,
            max_runs: 5000,
            threads: 0,
            seed0: 1,
        }
    }

    /// A CI-sized smoke variant: same hypotheses, fixed seeds, at most
    /// `runs` runs with no minimum.
    pub fn smoke(runs: usize) -> Self {
        Self {
            min_runs: 0,
            max_runs: runs,
            ..Self::standard()
        }
    }
}

/// Outcome for one property.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Property name (the oracle's).
    pub name: &'static str,
    /// Runs that produced an Accept or Reject for this property.
    pub trials: u64,
    /// Accepts among them.
    pub successes: u64,
    /// Runs that said nothing about this property.
    pub undecided_runs: u64,
    /// The SPRT's decision (`Continue` if `max_runs` hit first).
    pub decision: SprtDecision,
    /// Clopper–Pearson interval on the holding probability.
    pub ci: (f64, f64),
    /// Whether the property is a hard invariant (from
    /// [`Oracle::hard`]).
    pub hard: bool,
    /// Up to [`MAX_EXAMPLES`] counterexample descriptions.
    pub examples: Vec<String>,
}

impl PropertyResult {
    /// `true` when the property must be treated as failed: the SPRT
    /// accepted H₀, or — for hard invariants — any concrete violation
    /// was observed. Soft (statistical) properties tolerate individual
    /// violations as long as the SPRT does not accept H₀.
    pub fn failed(&self) -> bool {
        self.decision == SprtDecision::AcceptH0 || (self.hard && !self.examples.is_empty())
    }
}

/// The verifier's full report.
#[derive(Debug, Clone)]
pub struct SmcReport {
    /// Per-property outcomes, in oracle order.
    pub properties: Vec<PropertyResult>,
    /// Total runs executed.
    pub runs: usize,
    /// First seed used (runs used `seed0 .. seed0 + runs`).
    pub seed0: u64,
}

impl SmcReport {
    /// Whether any property failed (SPRT accepted H₀ or a violation
    /// was observed).
    pub fn any_reject(&self) -> bool {
        self.properties.iter().any(|p| p.failed())
    }

    /// Machine-readable JSON rendering (no external dependencies).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(256 + self.properties.len() * 256);
        let _ = write!(
            out,
            "{{\"runs\":{},\"seed0\":{},\"any_reject\":{},\"properties\":[",
            self.runs,
            self.seed0,
            self.any_reject()
        );
        for (i, p) in self.properties.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"decision\":\"{}\",\"trials\":{},\"successes\":{},\
                 \"undecided_runs\":{},\"ci_low\":{:.6},\"ci_high\":{:.6},\"hard\":{},\
                 \"failed\":{},\"examples\":[",
                p.name,
                decision_str(p.decision),
                p.trials,
                p.successes,
                p.undecided_runs,
                p.ci.0,
                p.ci.1,
                p.hard,
                p.failed()
            );
            for (j, e) in p.examples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(e));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for SmcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} runs (seeds {}..{}):", self.runs, self.seed0, self.seed0 + self.runs as u64)?;
        for p in &self.properties {
            // A hard invariant with any observed violation is FAIL even
            // if the SPRT (which only sees rates) would accept H₁.
            let label = if p.failed() { "FAIL" } else { decision_str(p.decision) };
            writeln!(
                f,
                "  {:10} {:28} {}/{} accepts ({} silent), p ∈ [{:.4}, {:.4}]",
                label,
                p.name,
                p.successes,
                p.trials,
                p.undecided_runs,
                p.ci.0,
                p.ci.1
            )?;
            let tag = if p.failed() {
                "counterexample"
            } else {
                "violation (within accepted rate)"
            };
            for e in &p.examples {
                writeln!(f, "             {tag}: {e}")?;
            }
        }
        Ok(())
    }
}

fn decision_str(d: SprtDecision) -> &'static str {
    match d {
        SprtDecision::AcceptH1 => "PASS",
        SprtDecision::AcceptH0 => "FAIL",
        SprtDecision::Continue => "UNDECIDED",
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

struct PropertyState {
    sprt: Sprt,
    undecided_runs: u64,
    examples: Vec<String>,
}

/// Runs the statistical model checker: `execute(seed)` produces one run
/// record, every oracle judges it, and each property's SPRT accumulates
/// until decided.
///
/// Work-stealing: worker threads pull the next seed from a shared
/// cursor, so heterogeneous run costs balance automatically.
pub fn run_smc<R, F>(
    cfg: &SmcConfig,
    execute: F,
    oracles: &[Box<dyn Oracle<R>>],
) -> SmcReport
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    assert!(!oracles.is_empty(), "need at least one oracle");
    assert!(cfg.max_runs >= 1, "need at least one run");
    assert!(cfg.min_runs <= cfg.max_runs, "min_runs must not exceed max_runs");

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        cfg.threads
    };

    let states: Vec<Mutex<PropertyState>> = oracles
        .iter()
        .map(|_| {
            Mutex::new(PropertyState {
                sprt: Sprt::new(cfg.sprt),
                undecided_runs: 0,
                examples: Vec::new(),
            })
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= cfg.max_runs {
                    break;
                }
                let record = execute(cfg.seed0 + k as u64);
                for (oracle, state) in oracles.iter().zip(&states) {
                    let verdict = oracle.judge(&record);
                    let mut st = state.lock().expect("poisoned");
                    match verdict {
                        Verdict::Accept => {
                            st.sprt.observe(true);
                        }
                        Verdict::Reject(why) => {
                            st.sprt.observe(false);
                            if st.examples.len() < MAX_EXAMPLES {
                                st.examples.push(why);
                            }
                        }
                        Verdict::Undecided => st.undecided_runs += 1,
                    }
                }
                let done = completed.fetch_add(1, Ordering::AcqRel) + 1;
                if done >= cfg.min_runs {
                    let all_decided = states.iter().all(|s| {
                        s.lock().expect("poisoned").sprt.decision() != SprtDecision::Continue
                    });
                    if all_decided {
                        stop.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }
    });

    let runs = completed.load(Ordering::Acquire);
    let properties = oracles
        .iter()
        .zip(states)
        .map(|(oracle, state)| {
            let st = state.into_inner().expect("poisoned");
            let decision = st.sprt.decision();
            PropertyResult {
                name: oracle.name(),
                trials: st.sprt.trials(),
                successes: st.sprt.successes(),
                undecided_runs: st.undecided_runs,
                decision,
                ci: st.sprt.confidence_interval(cfg.confidence),
                hard: oracle.hard(),
                examples: st.examples,
            }
        })
        .collect();

    SmcReport {
        properties,
        runs,
        seed0: cfg.seed0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Always(Verdict);
    impl Oracle<u64> for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn judge(&self, _: &u64) -> Verdict {
            self.0.clone()
        }
    }

    /// Rejects exactly the runs whose seed is divisible by `1/rate`.
    struct FailEvery(u64);
    impl Oracle<u64> for FailEvery {
        fn name(&self) -> &'static str {
            "fail-every"
        }
        fn judge(&self, seed: &u64) -> Verdict {
            if seed % self.0 == 0 {
                Verdict::Reject(format!("seed {seed}"))
            } else {
                Verdict::Accept
            }
        }
    }

    #[test]
    fn all_accept_reaches_pass_quickly() {
        let cfg = SmcConfig {
            min_runs: 0,
            max_runs: 2000,
            threads: 2,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> = vec![Box::new(Always(Verdict::Accept))];
        let report = run_smc(&cfg, |s| s, &oracles);
        assert_eq!(report.properties[0].decision, SprtDecision::AcceptH1);
        assert!(!report.any_reject());
        // The SPRT for 0.95 vs 0.995 at 1% errors decides in well under
        // 2000 all-accept runs.
        assert!(report.runs < 1000, "took {} runs", report.runs);
        // CI brackets 1.
        assert!(report.properties[0].ci.1 > 0.99);
    }

    #[test]
    fn frequent_failures_reach_fail() {
        let cfg = SmcConfig {
            min_runs: 0,
            max_runs: 3000,
            threads: 3,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> = vec![Box::new(FailEvery(5))];
        let report = run_smc(&cfg, |s| s, &oracles);
        let p = &report.properties[0];
        assert_eq!(p.decision, SprtDecision::AcceptH0);
        assert!(report.any_reject());
        assert!(!p.examples.is_empty());
        assert!(p.examples.len() <= MAX_EXAMPLES);
        // The interval excludes the H1 region.
        assert!(p.ci.1 < 0.995);
    }

    /// Soft variant of [`FailEvery`]: same judgments, but statistical.
    struct SoftFailEvery(u64);
    impl Oracle<u64> for SoftFailEvery {
        fn name(&self) -> &'static str {
            "soft-fail-every"
        }
        fn hard(&self) -> bool {
            false
        }
        fn judge(&self, seed: &u64) -> Verdict {
            if seed % self.0 == 0 {
                Verdict::Reject(format!("seed {seed}"))
            } else {
                Verdict::Accept
            }
        }
    }

    #[test]
    fn soft_property_tolerates_rare_violations_but_hard_does_not() {
        // One violation in 1000 runs: well inside H1 (p ≥ 0.995).
        let cfg = SmcConfig {
            min_runs: 1000,
            max_runs: 1000,
            threads: 2,
            seed0: 1,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> =
            vec![Box::new(SoftFailEvery(1000)), Box::new(FailEvery(1000))];
        let report = run_smc(&cfg, |s| s, &oracles);
        let (soft, hard) = (&report.properties[0], &report.properties[1]);
        assert_eq!(soft.decision, SprtDecision::AcceptH1);
        assert!(!soft.examples.is_empty(), "the violation is still reported");
        assert!(!soft.failed(), "soft property passes on the SPRT's rate decision");
        assert!(hard.failed(), "hard invariant fails on a single counterexample");
        assert!(report.any_reject());
    }

    #[test]
    fn undecided_runs_do_not_count_as_trials() {
        let cfg = SmcConfig {
            min_runs: 0,
            max_runs: 50,
            threads: 1,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> = vec![Box::new(Always(Verdict::Undecided))];
        let report = run_smc(&cfg, |s| s, &oracles);
        let p = &report.properties[0];
        assert_eq!(p.trials, 0);
        assert_eq!(p.undecided_runs, 50);
        assert_eq!(p.decision, SprtDecision::Continue);
        assert_eq!(p.ci, (0.0, 1.0));
        assert!(!report.any_reject(), "silence is not failure");
    }

    #[test]
    fn min_runs_is_respected_even_after_decision() {
        let cfg = SmcConfig {
            min_runs: 500,
            max_runs: 600,
            threads: 4,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> = vec![Box::new(Always(Verdict::Accept))];
        let report = run_smc(&cfg, |s| s, &oracles);
        assert!(report.runs >= 500, "stopped at {} < min_runs", report.runs);
    }

    #[test]
    fn report_json_is_well_formed_enough() {
        let cfg = SmcConfig {
            min_runs: 0,
            max_runs: 40,
            threads: 2,
            ..SmcConfig::standard()
        };
        let oracles: Vec<Box<dyn Oracle<u64>>> =
            vec![Box::new(FailEvery(7)), Box::new(Always(Verdict::Accept))];
        let report = run_smc(&cfg, |s| s, &oracles);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"fail-every\""));
        assert!(json.contains("\"always\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
    }

    #[test]
    fn every_seed_is_used_exactly_once() {
        let cfg = SmcConfig {
            min_runs: 0,
            max_runs: 200,
            threads: 8,
            seed0: 100,
            ..SmcConfig::standard()
        };
        let seen = Mutex::new(Vec::new());
        let oracles: Vec<Box<dyn Oracle<u64>>> = vec![Box::new(Always(Verdict::Undecided))];
        run_smc(
            &cfg,
            |s| {
                seen.lock().unwrap().push(s);
                s
            },
            &oracles,
        );
        let mut seeds = seen.into_inner().unwrap();
        seeds.sort_unstable();
        assert_eq!(seeds, (100..300).collect::<Vec<u64>>());
    }
}
