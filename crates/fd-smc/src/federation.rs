//! Federation-layer scenarios: randomized multi-node failover drives,
//! judged by coverage and convergence oracles.
//!
//! The [`cluster`](crate::cluster) scenarios check one monitor's
//! membership layer; these check the tier above it — the
//! `fd-federation` monitor-of-monitors with rendezvous partitioning,
//! digest gossip and cross-node failover. Each scenario samples a
//! federation shape (node count, peer count), a scripted
//! [`MultiNodePlan`] (one node killed, optionally restarted; optionally
//! a survivor–survivor gossip-link partition), drives the
//! [`Federation`] harness tick by tick on an explicit clock, and
//! returns a [`FedRecord`]. Two properties are judged:
//!
//! * [`FedCoverageOracle`] — **no peer left unmonitored after the
//!   failover settle time**: once the node-watch detection bound
//!   `η + α` (plus gossip/rebalance granularity) has elapsed past the
//!   kill and past any link heal, every registered peer has at least
//!   one alive owner, the first takeover happened within the bound,
//!   and the run ends with exactly-once ownership.
//! * [`FedConvergenceOracle`] — **digest convergence**: by the end of
//!   the run (which always spans a full-refresh round), every alive
//!   node knows every other alive node's partition at its current
//!   incarnation and the union of claims covers the registered
//!   universe.
//!
//! Everything is deterministic per seed — the federation monitors are
//! driven exclusively through `record_at`/`advance_to`-style explicit
//! clocks — so any counterexample replays from one integer.

use crate::oracle::{Oracle, Verdict};
use fd_core::Heartbeat;
use fd_federation::{Coverage, FedChange, FedEvent, Federation, FederationConfig, NodeId};
use fd_sim::MultiNodePlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One completed federation drive.
#[derive(Debug)]
pub struct FedRecord {
    /// The seed it was generated from.
    pub seed: u64,
    /// Monitor node ids.
    pub nodes: Vec<NodeId>,
    /// Registered peers.
    pub peers: Vec<u64>,
    /// When the victim was killed.
    pub kill_at: f64,
    /// When it was restarted, if the scenario restarts it.
    pub restart_at: Option<f64>,
    /// Detection + failover bound: node-watch `η + α` plus two seconds
    /// of gossip/rebalance granularity.
    pub takeover_bound: f64,
    /// Harness time after which coverage must be whole: the bound past
    /// both the kill and any link heal.
    pub settle_at: f64,
    /// Coverage measured at [`FedRecord::settle_at`].
    pub settle_coverage: Coverage,
    /// Coverage at the horizon.
    pub final_coverage: Coverage,
    /// Whether every alive node's view had converged at the horizon.
    pub converged: bool,
    /// The federation event stream (adoptions, releases), in order.
    pub events: Vec<FedEvent>,
}

impl FedRecord {
    /// When some survivor first adopted one of the victim's peers.
    pub fn first_takeover_at(&self) -> Option<f64> {
        let victim = self.victim();
        self.events
            .iter()
            .find(|e| matches!(e.change, FedChange::PeerAdopted { from, .. } if from == victim))
            .map(|e| e.at)
    }

    /// The killed node (always the highest node id, by construction).
    pub fn victim(&self) -> NodeId {
        *self.nodes.last().expect("at least one node")
    }
}

/// Drives one randomized federation failover scenario, deterministically
/// per seed.
///
/// The federation has 3–5 nodes and 24–60 peers. The highest node is
/// killed between t = 12 and t = 20 and, with probability one half,
/// restarted 8–12 s later. With probability 0.4 a gossip link between
/// two *survivors* partitions for 2–4 s starting before the kill, so
/// failover proceeds under a split monitor-of-monitors view. Peer
/// heartbeats tick every second; each second runs one gossip round, one
/// freshness sweep and one rebalance. The horizon always lands on a
/// full-refresh round past every scripted event plus the settle bound.
pub fn run_federation_scenario(seed: u64) -> FedRecord {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_nodes = rng.random_range(3..=5u64);
    let nodes: Vec<NodeId> = (0..n_nodes).collect();
    let n_peers = rng.random_range(24..=60u64);
    let victim = n_nodes - 1;
    let kill_at = rng.random_range(12..=20u64) as f64;
    let restart_at =
        rng.random_bool(0.5).then(|| kill_at + rng.random_range(8..=12u64) as f64);

    let mut plan = MultiNodePlan::new(seed).kill_node(victim, kill_at);
    if let Some(at) = restart_at {
        plan = plan.restart_node(victim, at);
    }
    let mut heal_at = 0.0;
    if rng.random_bool(0.4) && n_nodes >= 3 {
        // Partition two survivors across the kill window.
        let a = rng.random_range(0..victim);
        let b = (a + 1 + rng.random_range(0..victim - 1)) % victim;
        if a != b {
            let start = rng.random_range(8..=11u64) as f64;
            heal_at = start + rng.random_range(2..=4u64) as f64;
            plan = plan.partition_link(a, b, start, heal_at);
        }
    }

    let cfg = FederationConfig { nodes: nodes.clone(), ..FederationConfig::default() };
    let takeover_bound = cfg.node_watch.eta + cfg.node_watch.alpha + 2.0;
    let settle_at = (kill_at.max(heal_at) + takeover_bound).ceil();
    let refresh = cfg.full_refresh_every;
    let last = plan.last_event_time().max(settle_at) + 4.0;
    let horizon = (last as u64).div_ceil(refresh) * refresh + refresh;

    let mut fed = Federation::spawn(cfg).expect("spawn federation");
    for peer in 0..n_peers {
        fed.register(1000 + peer);
    }
    let mut down = vec![false; nodes.len()];
    let mut settle_coverage = None;

    for step in 1..=horizon {
        let now = step as f64;
        for (i, &node) in nodes.iter().enumerate() {
            let crashed = plan.is_node_crashed_at(node, now);
            if crashed && !down[i] {
                fed.kill(node, now);
                down[i] = true;
            } else if !crashed && down[i] {
                fed.restart(node).expect("restart");
                down[i] = false;
            }
        }
        for peer in fed.peers().to_vec() {
            fed.deliver(peer, now, 1, Heartbeat::new(step, now));
        }
        fed.gossip_where(now, |a, b| plan.link_blocked_at(a, b, now));
        fed.advance(now);
        fed.rebalance(now);
        if now >= settle_at && settle_coverage.is_none() {
            settle_coverage = Some(fed.coverage());
        }
    }

    let record = FedRecord {
        seed,
        peers: fed.peers().to_vec(),
        kill_at,
        restart_at,
        takeover_bound,
        settle_at,
        settle_coverage: settle_coverage.expect("horizon spans the settle point"),
        final_coverage: fed.coverage(),
        converged: fed.views_converged(),
        events: fed.events().to_vec(),
        nodes,
    };
    fed.shutdown();
    record
}

/// One completed relay-routing drive: a persistent one-way link cut
/// with every node alive throughout.
#[derive(Debug)]
pub struct FedRelayRecord {
    /// The seed it was generated from.
    pub seed: u64,
    /// Monitor node ids (all alive for the whole run).
    pub nodes: Vec<NodeId>,
    /// The severed direction: datagrams `cut.0 → cut.1` never arrive.
    pub cut: (NodeId, NodeId),
    /// When the one-way cut starts.
    pub cut_at: f64,
    /// Ticks (past bootstrap grace + detection bound) on which some
    /// alive node's view missed another alive node — with no real
    /// failure in the run, every one is a false suspicion.
    pub false_suspicions: u64,
    /// Whether every node's view had converged at the horizon.
    pub converged: bool,
    /// Relayed digests accepted federation-wide (`fd_fed_relayed_digests`).
    pub relayed_digests: u64,
}

/// Drives one randomized relay-routing scenario, deterministically per
/// seed: 4–5 nodes, 24–48 peers, nobody dies, but one directed gossip
/// link is cut early and stays cut to the horizon. The cut node stays
/// reachable through the other survivors' relays, so the observer on
/// the broken end must keep trusting it (anything else is a false
/// suspicion) and every view must still converge.
pub fn run_relay_scenario(seed: u64) -> FedRelayRecord {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_nodes = rng.random_range(4..=5u64);
    let nodes: Vec<NodeId> = (0..n_nodes).collect();
    let n_peers = rng.random_range(24..=48u64);
    // Sever one directed link: `from`'s datagrams toward `to` vanish.
    let from = rng.random_range(0..n_nodes);
    let to = (from + 1 + rng.random_range(0..n_nodes - 1)) % n_nodes;
    let cut_at = rng.random_range(4..=8u64) as f64;

    let cfg = FederationConfig { nodes: nodes.clone(), ..FederationConfig::default() };
    let grace = cfg.bootstrap_grace;
    let bound = cfg.node_watch.eta + cfg.node_watch.alpha + 2.0;
    let horizon = ((grace + bound) as u64 + 16).max(32);
    let plan = MultiNodePlan::new(seed).cut_link_oneway(from, to, cut_at, horizon as f64 + 16.0);

    let mut fed = Federation::spawn(cfg).expect("spawn federation");
    for peer in 0..n_peers {
        fed.register(2000 + peer);
    }
    let mut false_suspicions = 0u64;
    for step in 1..=horizon {
        let now = step as f64;
        for peer in fed.peers().to_vec() {
            fed.deliver(peer, now, 1, Heartbeat::new(step, now));
        }
        fed.gossip_where(now, |a, b| plan.link_blocked_from_to(a, b, now));
        fed.advance(now);
        fed.rebalance(now);
        if now > grace + bound {
            for &id in &nodes {
                let alive = fed.node(id).expect("alive").alive_nodes(now);
                false_suspicions += nodes.iter().filter(|n| !alive.contains(n)).count() as u64;
            }
        }
    }

    let record = FedRelayRecord {
        seed,
        cut: (from, to),
        cut_at,
        false_suspicions,
        converged: fed.views_converged(),
        relayed_digests: fed
            .metrics()
            .relayed_digests
            .load(std::sync::atomic::Ordering::Relaxed),
        nodes,
    };
    fed.shutdown();
    record
}

/// Relay coverage: a one-way-cut link must be routed around, never
/// detected as a node failure.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedRelayOracle;

impl Oracle<FedRelayRecord> for FedRelayOracle {
    fn name(&self) -> &'static str {
        "fed-relay-coverage"
    }

    fn judge(&self, rec: &FedRelayRecord) -> Verdict {
        if rec.false_suspicions > 0 {
            return Verdict::Reject(format!(
                "{} false suspicions despite relay reachability (cut {:?} at {}, seed {})",
                rec.false_suspicions, rec.cut, rec.cut_at, rec.seed
            ));
        }
        if !rec.converged {
            return Verdict::Reject(format!(
                "views had not converged by the horizon under the {:?} cut (seed {})",
                rec.cut, rec.seed
            ));
        }
        if rec.relayed_digests == 0 {
            return Verdict::Reject(format!(
                "no digest was ever relayed — the cut {:?} was never routed around (seed {})",
                rec.cut, rec.seed
            ));
        }
        Verdict::Accept
    }
}

/// No peer left unmonitored after the failover settle time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedCoverageOracle;

impl Oracle<FedRecord> for FedCoverageOracle {
    fn name(&self) -> &'static str {
        "fed-coverage-after-failover"
    }

    fn judge(&self, rec: &FedRecord) -> Verdict {
        let Some(takeover) = rec.first_takeover_at() else {
            return Verdict::Reject(format!(
                "node {} was killed at {} but nobody ever adopted its partition (seed {})",
                rec.victim(),
                rec.kill_at,
                rec.seed
            ));
        };
        if takeover - rec.kill_at > rec.takeover_bound {
            return Verdict::Reject(format!(
                "first takeover at {takeover} exceeds kill {} + bound {} (seed {})",
                rec.kill_at, rec.takeover_bound, rec.seed
            ));
        }
        if !rec.settle_coverage.orphans.is_empty() {
            return Verdict::Reject(format!(
                "{} peers unmonitored at settle time {}: {:?} (seed {})",
                rec.settle_coverage.orphans.len(),
                rec.settle_at,
                rec.settle_coverage.orphans,
                rec.seed
            ));
        }
        if !rec.final_coverage.is_clean() {
            return Verdict::Reject(format!(
                "horizon coverage not exactly-once: orphans {:?}, duplicated {:?} (seed {})",
                rec.final_coverage.orphans, rec.final_coverage.duplicated, rec.seed
            ));
        }
        Verdict::Accept
    }
}

/// Digest convergence: every alive node ends the run knowing every
/// other alive node's partition at its current incarnation, covering
/// the whole registered universe.
#[derive(Debug, Clone, Copy, Default)]
pub struct FedConvergenceOracle;

impl Oracle<FedRecord> for FedConvergenceOracle {
    fn name(&self) -> &'static str {
        "fed-digest-convergence"
    }

    fn judge(&self, rec: &FedRecord) -> Verdict {
        if rec.converged {
            Verdict::Accept
        } else {
            Verdict::Reject(format!(
                "views had not converged by the horizon (kill {}, restart {:?}, seed {})",
                rec.kill_at, rec.restart_at, rec.seed
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_scenarios_satisfy_both_oracles() {
        let coverage = FedCoverageOracle;
        let convergence = FedConvergenceOracle;
        let mut restarted = 0;
        for seed in 0..8 {
            let rec = run_federation_scenario(seed);
            let v = coverage.judge(&rec);
            assert!(!v.is_reject(), "seed {seed}: {v:?}");
            let v = convergence.judge(&rec);
            assert!(!v.is_reject(), "seed {seed}: {v:?}");
            restarted += usize::from(rec.restart_at.is_some());
        }
        // The sweep must exercise both the restart and the
        // kill-without-return arm, or half the failover logic is idle.
        assert!(restarted > 0 && restarted < 8, "{restarted}/8 scenarios restarted");
    }

    #[test]
    fn relay_scenarios_satisfy_the_relay_oracle() {
        let oracle = FedRelayOracle;
        for seed in 0..6 {
            let rec = run_relay_scenario(seed);
            let v = oracle.judge(&rec);
            assert!(!v.is_reject(), "seed {seed}: {v:?}");
            assert!(rec.relayed_digests > 0, "seed {seed} never relayed");
        }
    }

    #[test]
    fn relay_scenarios_are_deterministic() {
        let a = run_relay_scenario(3);
        let b = run_relay_scenario(3);
        assert_eq!(a.cut, b.cut);
        assert_eq!(a.false_suspicions, b.false_suspicions);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.relayed_digests, b.relayed_digests);
    }

    #[test]
    fn federation_scenarios_are_deterministic() {
        let a = run_federation_scenario(5);
        let b = run_federation_scenario(5);
        assert_eq!(a.events, b.events, "event streams diverged");
        assert_eq!(a.settle_coverage.orphans, b.settle_coverage.orphans);
        assert_eq!(a.converged, b.converged);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.peers, b.peers);
    }
}
