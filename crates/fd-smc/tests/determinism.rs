//! Determinism properties of the SMC harness: identical `(spec, seed)`
//! must yield byte-identical fault plans and identical oracle verdicts
//! across independent invocations — the property that makes every
//! counterexample in an SMC report replayable from two integers.

use fd_smc::{
    AgreementOracle, ConformanceOracle, DetectionOracle, Oracle, RunRecord, ScenarioSpec,
    Theorem1Oracle, Verdict,
};
use proptest::prelude::*;

fn spec_with(benign: f64, crash: f64, horizon: f64) -> ScenarioSpec {
    ScenarioSpec {
        benign_fraction: benign,
        crash_fraction: crash,
        horizon,
        requirements: Some(fd_metrics::QosRequirements::new(4.0, 10.0, 2.0).unwrap()),
        ..ScenarioSpec::broad()
    }
}

fn verdicts(rec: &RunRecord) -> Vec<Verdict> {
    let oracles: Vec<Box<dyn Oracle<RunRecord>>> = vec![
        Box::new(AgreementOracle),
        Box::new(Theorem1Oracle::default()),
        Box::new(DetectionOracle::default()),
        Box::new(ConformanceOracle::default()),
    ];
    oracles.iter().map(|o| o.judge(rec)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-identical fault plans: the sampled plan's full debug
    /// rendering (segments + events + seed) matches across two
    /// independent samples of the same `(spec, seed)`.
    #[test]
    fn prop_same_seed_same_plan(
        seed in 0u64..10_000,
        benign_pct in 0u32..101,
        crash_pct in 0u32..101,
    ) {
        let spec = spec_with(
            benign_pct as f64 / 100.0,
            crash_pct as f64 / 100.0,
            300.0,
        );
        let a = spec.sample(seed);
        let b = spec.sample(seed);
        prop_assert_eq!(format!("{:?}", a.plan), format!("{:?}", b.plan));
        prop_assert_eq!(a.delta.to_bits(), b.delta.to_bits());
        prop_assert_eq!(a.p_loss.to_bits(), b.p_loss.to_bits());
        prop_assert_eq!(a.benign, b.benign);
        prop_assert_eq!(a.regime.clone(), b.regime.clone());
    }

    /// Identical oracle verdicts: running the same scenario twice and
    /// judging both runs yields the same verdict for every oracle.
    #[test]
    fn prop_same_seed_same_verdicts(seed in 0u64..500) {
        let spec = spec_with(0.3, 0.5, 200.0);
        let ra = spec.sample(seed).run();
        let rb = spec.sample(seed).run();
        prop_assert_eq!(
            format!("{:?}", ra.outcome.trace),
            format!("{:?}", rb.outcome.trace),
            "same scenario must produce the identical trace"
        );
        prop_assert_eq!(verdicts(&ra), verdicts(&rb));
    }
}
