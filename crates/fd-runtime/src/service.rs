//! A multi-process failure-detection service.
//!
//! The paper reports (§8.1) that its adaptive algorithms "form the core of
//! a failure detection service that is currently being implemented and
//! evaluated \[15\] … intended to be shared among many different concurrent
//! applications, each with a different set of QoS requirements". This
//! module is that façade in miniature: one heartbeater + lossy link +
//! supervised monitor per watched process, QoS-driven parameter selection,
//! and a queryable suspicion list (the shape group-membership and
//! cluster-management layers consume, §1).
//!
//! Each watch can carry a scripted [`FaultPlan`]: link faults run inside
//! the transport, while process-level events (crash, recovery, clock
//! jump) are driven by a per-watch fault-driver thread against the
//! heartbeater and the monitor's own [`JumpableClock`]. Watch machinery
//! is supervised — a panicking detector degrades only its own watch,
//! queryable via [`Service::health`].

use crate::clock::{Clock, JumpableClock, SkewedClock, WallClock};
use crate::error::Health;
use crate::heartbeater::Heartbeater;
use crate::monitor::{DetectorFactory, Monitor};
use crate::transport::{LinkSpec, LossyChannel, DEFAULT_CHANNEL_CAPACITY};
use crossbeam::channel;
use fd_core::config::{configure_nfd_u, NfdUParams};
use fd_core::detectors::NfdE;
use fd_metrics::{FdOutput, ObservedQos, QosRequirements, TransitionTrace};
use fd_sim::{FaultPlan, ProcessEvent};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// How the detector parameters of a watched process are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ParamChoice {
    /// Explicit `(η, α)`.
    Explicit(NfdUParams),
    /// Derived from QoS requirements via the §6.2 configurator, given
    /// expected `p_L` and `V(D)`.
    FromQos {
        requirements: QosRequirements,
        loss_probability: f64,
        delay_variance: f64,
    },
}

/// Specification of one process to watch.
pub struct ProcessSpec {
    name: String,
    link: Option<LinkSpec>,
    params: Option<ParamChoice>,
    sender_clock_skew: f64,
    nfd_e_window: usize,
    seed: u64,
    fault_plan: Option<FaultPlan>,
    detector_factory: Option<DetectorFactory>,
    channel_capacity: usize,
    max_restarts: u32,
}

impl fmt::Debug for ProcessSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessSpec")
            .field("name", &self.name)
            .field("params", &self.params)
            .field("sender_clock_skew", &self.sender_clock_skew)
            .field("has_fault_plan", &self.fault_plan.is_some())
            .field("max_restarts", &self.max_restarts)
            .finish()
    }
}

impl ProcessSpec {
    /// Starts a spec for the process called `name`.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            link: None,
            params: None,
            sender_clock_skew: 0.0,
            nfd_e_window: 32,
            seed: 0,
            fault_plan: None,
            detector_factory: None,
            channel_capacity: DEFAULT_CHANNEL_CAPACITY,
            max_restarts: 3,
        }
    }

    /// Sets the link law the heartbeats traverse.
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.link = Some(link);
        self
    }

    /// Uses explicit NFD-E parameters.
    pub fn heartbeat_params(mut self, params: NfdUParams) -> Self {
        self.params = Some(ParamChoice::Explicit(params));
        self
    }

    /// Derives parameters from QoS requirements (§6.2 configurator) given
    /// the expected loss probability and delay variance.
    pub fn qos(
        mut self,
        requirements: QosRequirements,
        loss_probability: f64,
        delay_variance: f64,
    ) -> Self {
        self.params = Some(ParamChoice::FromQos {
            requirements,
            loss_probability,
            delay_variance,
        });
        self
    }

    /// Gives the monitored process's clock a constant skew relative to
    /// the monitor (§6 unsynchronized clocks). Default 0.
    pub fn sender_clock_skew(mut self, skew: f64) -> Self {
        self.sender_clock_skew = skew;
        self
    }

    /// NFD-E estimation window (default 32, per §7.1).
    pub fn estimation_window(mut self, n: usize) -> Self {
        self.nfd_e_window = n;
        self
    }

    /// Seed for the link's loss/delay randomness.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overlays a scripted fault timeline on this watch. Link faults run
    /// inside the transport; crash/recover events drive the heartbeater;
    /// clock jumps advance the *monitor's* clock. Time 0 of the plan is
    /// the moment [`Service::watch`] returns.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Replaces the default NFD-E detector with instances built by
    /// `factory` (also used to rebuild after a supervised panic).
    pub fn detector_factory(mut self, factory: DetectorFactory) -> Self {
        self.detector_factory = Some(factory);
        self
    }

    /// Capacity of the heartbeat channel between transport and monitor
    /// (default [`DEFAULT_CHANNEL_CAPACITY`]; overflow drops are counted
    /// by the transport, and to a failure detector they are just more
    /// message loss).
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity;
        self
    }

    /// How many times a panicked detector is rebuilt before the watch
    /// stops (default 3).
    pub fn max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }
}

/// Error starting a watch.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// A process with this name is already watched.
    DuplicateName(String),
    /// The spec lacked a link law.
    MissingLink(String),
    /// The spec lacked parameters (explicit or QoS-derived).
    MissingParams(String),
    /// The §6.2 configurator reported the QoS unachievable.
    QosUnachievable(String),
    /// The configurator failed on the supplied inputs.
    ConfigFailed(String),
    /// The runtime failed to start watch machinery (thread spawn, …);
    /// the message carries the underlying [`RuntimeError`]'s rendering.
    ///
    /// [`RuntimeError`]: crate::error::RuntimeError
    Runtime(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::DuplicateName(n) => write!(f, "process `{n}` is already watched"),
            ServiceError::MissingLink(n) => write!(f, "process `{n}` has no link specification"),
            ServiceError::MissingParams(n) => {
                write!(f, "process `{n}` has neither explicit parameters nor QoS")
            }
            ServiceError::QosUnachievable(n) => {
                write!(f, "no failure detector can achieve the QoS requested for `{n}`")
            }
            ServiceError::ConfigFailed(n) => {
                write!(f, "configuration failed for `{n}`")
            }
            ServiceError::Runtime(msg) => write!(f, "runtime failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Thread applying a plan's process-level events to a running watch.
struct FaultDriver {
    stop_tx: channel::Sender<()>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FaultDriver {
    fn stop(&mut self) {
        let _ = self.stop_tx.try_send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct Watch {
    heartbeater: Arc<Heartbeater>,
    monitor: Option<Monitor>,
    params: NfdUParams,
    driver: Option<FaultDriver>,
}

/// The failure-detection service: watches any number of (simulated-link)
/// processes and answers "whom do you suspect?".
#[derive(Default)]
pub struct Service {
    clock: Option<WallClock>,
    watches: HashMap<String, Watch>,
}

impl Service {
    /// Creates an empty service.
    pub fn new() -> Self {
        Self {
            clock: Some(WallClock::new()),
            watches: HashMap::new(),
        }
    }

    fn clock(&self) -> WallClock {
        self.clock.clone().expect("service clock present")
    }

    /// Starts watching a process per `spec`.
    ///
    /// # Errors
    ///
    /// Returns a [`ServiceError`] when the spec is incomplete, the name
    /// collides, the requested QoS is unachievable, or the runtime fails
    /// to start the watch machinery.
    pub fn watch(&mut self, spec: ProcessSpec) -> Result<NfdUParams, ServiceError> {
        if self.watches.contains_key(&spec.name) {
            return Err(ServiceError::DuplicateName(spec.name));
        }
        let link = spec
            .link
            .ok_or_else(|| ServiceError::MissingLink(spec.name.clone()))?;
        let params = match spec
            .params
            .ok_or_else(|| ServiceError::MissingParams(spec.name.clone()))?
        {
            ParamChoice::Explicit(p) => p,
            ParamChoice::FromQos {
                requirements,
                loss_probability,
                delay_variance,
            } => configure_nfd_u(&requirements, loss_probability, delay_variance)
                .map_err(|_| ServiceError::ConfigFailed(spec.name.clone()))?
                .ok_or_else(|| ServiceError::QosUnachievable(spec.name.clone()))?,
        };
        let runtime_err = |e: crate::error::RuntimeError| ServiceError::Runtime(e.to_string());

        let clock = self.clock();
        let (tx, rx, _worker) = match &spec.fault_plan {
            Some(plan) => LossyChannel::create_with_plan(link, spec.seed, plan, spec.channel_capacity)
                .map_err(runtime_err)?,
            None => LossyChannel::create_with_capacity(link, spec.seed, spec.channel_capacity)
                .map_err(runtime_err)?,
        };
        let sender_clock = SkewedClock::new(clock.clone(), spec.sender_clock_skew);
        let heartbeater =
            Arc::new(Heartbeater::spawn(params.eta, tx, sender_clock).map_err(runtime_err)?);

        let factory: DetectorFactory = match spec.detector_factory {
            Some(f) => f,
            None => {
                let (eta, alpha, window) = (params.eta, params.alpha, spec.nfd_e_window);
                Box::new(move || {
                    Box::new(NfdE::new(eta, alpha, window).expect("validated parameters"))
                })
            }
        };
        let monitor_clock = JumpableClock::new(clock.clone());
        let monitor =
            Monitor::spawn_supervised(factory, rx, monitor_clock.clone(), spec.max_restarts)
                .map_err(runtime_err)?;

        let driver = match &spec.fault_plan {
            Some(plan) if !plan.events().is_empty() => Some(spawn_fault_driver(
                plan.events().to_vec(),
                clock,
                Arc::clone(&heartbeater),
                monitor_clock,
            )
            .map_err(runtime_err)?),
            _ => None,
        };

        self.watches.insert(
            spec.name,
            Watch {
                heartbeater,
                monitor: Some(monitor),
                params,
                driver,
            },
        );
        Ok(params)
    }

    /// Names of all watched processes.
    pub fn watched(&self) -> Vec<&str> {
        self.watches.keys().map(String::as_str).collect()
    }

    /// The parameters in force for `name`, if watched.
    pub fn params(&self, name: &str) -> Option<NfdUParams> {
        self.watches.get(name).map(|w| w.params)
    }

    /// Current output per watched process.
    pub fn status(&self) -> HashMap<String, FdOutput> {
        self.watches
            .iter()
            .map(|(name, w)| {
                let out = w
                    .monitor
                    .as_ref()
                    .map(|m| m.output())
                    .unwrap_or(FdOutput::Suspect);
                (name.clone(), out)
            })
            .collect()
    }

    /// Current output for a single watched process, `None` if not
    /// watched. A watch whose monitor is stopped reads as `Suspect`.
    pub fn output(&self, name: &str) -> Option<FdOutput> {
        self.watches.get(name).map(|w| {
            w.monitor
                .as_ref()
                .map(|m| m.output())
                .unwrap_or(FdOutput::Suspect)
        })
    }

    /// Live QoS of the watch for `name`: online interval metrics over
    /// the output stream so far, without stopping the watch. `None` if
    /// not watched or the monitor has not published an output yet.
    pub fn qos(&self, name: &str) -> Option<ObservedQos> {
        self.watches
            .get(name)
            .and_then(|w| w.monitor.as_ref())
            .and_then(Monitor::qos)
    }

    /// Health of the watch machinery for `name` (the monitor's
    /// supervision state — *not* whether the watched process is alive;
    /// that is [`Service::status`]). `None` if not watched.
    pub fn health(&self, name: &str) -> Option<Health> {
        self.watches
            .get(name)
            .map(|w| w.monitor.as_ref().map(|m| m.health()).unwrap_or(Health::Stopped))
    }

    /// The currently suspected processes (the classic "list of suspects"
    /// interface of §1).
    pub fn suspects(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .status()
            .into_iter()
            .filter(|(_, out)| out.is_suspect())
            .map(|(n, _)| n)
            .collect();
        v.sort();
        v
    }

    /// Crashes the named process (for fault-injection demos/tests).
    /// Returns whether the process was found (and not already crashed).
    pub fn crash(&mut self, name: &str) -> bool {
        match self.watches.get(name) {
            Some(w) if !w.heartbeater.is_crashed() => {
                w.heartbeater.crash();
                true
            }
            _ => false,
        }
    }

    /// Recovers a crashed process: heartbeating resumes with continuing
    /// sequence numbers. Returns whether a recovery actually happened.
    pub fn recover(&mut self, name: &str) -> bool {
        match self.watches.get(name) {
            Some(w) if w.heartbeater.is_crashed() => w.heartbeater.recover().is_ok(),
            _ => false,
        }
    }

    /// Stops watching `name`, returning the recorded trace.
    pub fn unwatch(&mut self, name: &str) -> Option<TransitionTrace> {
        let mut w = self.watches.remove(name)?;
        if let Some(d) = w.driver.as_mut() {
            d.stop();
        }
        w.heartbeater.crash();
        w.monitor.take().map(Monitor::stop)
    }

    /// Shuts the whole service down.
    pub fn shutdown(&mut self) {
        let names: Vec<String> = self.watches.keys().cloned().collect();
        for n in names {
            let _ = self.unwatch(&n);
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the thread that replays a plan's process events in real time:
/// crash/recover against the heartbeater, clock jumps against the
/// monitor's clock. Exits early when told to stop.
fn spawn_fault_driver(
    events: Vec<ProcessEvent>,
    base: WallClock,
    heartbeater: Arc<Heartbeater>,
    monitor_clock: JumpableClock<WallClock>,
) -> Result<FaultDriver, crate::error::RuntimeError> {
    let (stop_tx, stop_rx) = channel::bounded::<()>(1);
    let start = base.now();
    let handle = std::thread::Builder::new()
        .name("fd-fault-driver".into())
        .spawn(move || {
            for ev in events {
                let due = start + ev.at();
                // Sleep until the event's deadline in one wait (woken
                // early only by a stop request); the loop merely absorbs
                // early wakeups, it does not poll on a fixed period.
                loop {
                    let now = base.now();
                    if now >= due {
                        break;
                    }
                    let wait = Duration::from_secs_f64((due - now).max(1e-6));
                    match stop_rx.recv_timeout(wait) {
                        Err(channel::RecvTimeoutError::Timeout) => {}
                        _ => return, // stop requested or driver orphaned
                    }
                }
                match ev {
                    ProcessEvent::Crash { .. } => {
                        heartbeater.crash();
                    }
                    ProcessEvent::Recover { .. } => {
                        // A failed respawn leaves the process crashed —
                        // to the detector that is just a real crash.
                        let _ = heartbeater.recover();
                    }
                    ProcessEvent::ClockJump { offset, .. } => monitor_clock.jump(offset),
                }
            }
        })
        .map_err(|e| crate::error::RuntimeError::spawn("fd-fault-driver", e))?;
    Ok(FaultDriver {
        stop_tx,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_stats::dist::Exponential;
    use std::time::Duration;

    fn fast_link(seed_unused: f64) -> LinkSpec {
        let _ = seed_unused;
        LinkSpec::new(0.0, Box::new(Exponential::with_mean(0.001).unwrap())).unwrap()
    }

    /// Polls until `pred` holds or the timeout elapses; returns success.
    fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        pred()
    }

    #[test]
    fn watch_trust_crash_suspect_cycle() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("node-a")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0))
                .seed(1),
        )
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(2), || svc.status()["node-a"].is_trust()),
            "never reached trust"
        );
        assert!(svc.suspects().is_empty());
        assert_eq!(svc.health("node-a"), Some(Health::Healthy));

        assert!(svc.crash("node-a"));
        assert!(
            wait_until(Duration::from_secs(2), || svc.status()["node-a"].is_suspect()),
            "crash never detected"
        );
        assert_eq!(svc.suspects(), vec!["node-a".to_string()]);
        svc.shutdown();
    }

    #[test]
    fn qos_driven_watch_configures_parameters() {
        let mut svc = Service::new();
        // Relative detection budget 0.2 s, ≥ 100 s between mistakes,
        // mistakes fixed within 0.05 s; clean fast link.
        let req = QosRequirements::new(0.2, 100.0, 0.05).unwrap();
        let params = svc
            .watch(
                ProcessSpec::named("db")
                    .qos(req, 0.0, 1e-6)
                    .link(fast_link(0.0))
                    .seed(2),
            )
            .unwrap();
        assert!(params.eta > 0.0 && params.alpha > 0.0);
        assert!((params.eta + params.alpha - 0.2).abs() < 1e-9);
        assert_eq!(svc.params("db"), Some(params));
        svc.shutdown();
    }

    #[test]
    fn unachievable_qos_is_reported() {
        let mut svc = Service::new();
        // A link that loses every message: no failure detector can meet
        // any accuracy requirement (Theorem 12 case 2).
        let req = QosRequirements::new(0.1, 100.0, 0.05).unwrap();
        let err = svc
            .watch(
                ProcessSpec::named("x")
                    .qos(req, 1.0, 1e-6)
                    .link(fast_link(0.0)),
            )
            .unwrap_err();
        assert!(matches!(err, ServiceError::QosUnachievable(_)));
    }

    #[test]
    fn duplicate_and_incomplete_specs_rejected() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("a")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0)),
        )
        .unwrap();
        assert!(matches!(
            svc.watch(
                ProcessSpec::named("a")
                    .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                    .link(fast_link(0.0))
            ),
            Err(ServiceError::DuplicateName(_))
        ));
        assert!(matches!(
            svc.watch(ProcessSpec::named("b").link(fast_link(0.0))),
            Err(ServiceError::MissingParams(_))
        ));
        assert!(matches!(
            svc.watch(
                ProcessSpec::named("c").heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
            ),
            Err(ServiceError::MissingLink(_))
        ));
        svc.shutdown();
    }

    #[test]
    fn unwatch_returns_trace() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("n")
                .heartbeat_params(NfdUParams { eta: 0.005, alpha: 0.03 })
                .link(fast_link(0.0))
                .seed(3),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(80));
        let trace = svc.unwatch("n").expect("trace");
        assert!(trace.duration() > 0.0);
        assert!(svc.watched().is_empty());
        assert!(svc.unwatch("n").is_none());
    }

    #[test]
    fn monitors_multiple_processes_independently() {
        let mut svc = Service::new();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            svc.watch(
                ProcessSpec::named(*name)
                    .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                    .link(fast_link(0.0))
                    .seed(i as u64),
            )
            .unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(2), || svc.suspects().is_empty()
                && svc.status().values().all(|o| o.is_trust())),
            "not all watches reached trust"
        );
        svc.crash("b");
        assert!(
            wait_until(Duration::from_secs(2), || svc.suspects()
                == vec!["b".to_string()]),
            "crash of b not isolated: suspects = {:?}",
            svc.suspects()
        );
        assert!(svc.status()["a"].is_trust());
        assert!(svc.status()["c"].is_trust());
        svc.shutdown();
    }

    #[test]
    fn skewed_sender_clock_does_not_break_nfd_e() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("skewed")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0))
                .sender_clock_skew(3600.0)
                .seed(4),
        )
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(2), || svc.status()["skewed"].is_trust()),
            "skew broke NFD-E"
        );
        svc.shutdown();
    }

    #[test]
    fn manual_recover_restores_trust() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("r")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0))
                .seed(5),
        )
        .unwrap();
        assert!(wait_until(Duration::from_secs(2), || svc.status()["r"].is_trust()));
        assert!(svc.crash("r"));
        assert!(!svc.recover("missing"));
        assert!(wait_until(Duration::from_secs(2), || svc.status()["r"].is_suspect()));
        assert!(svc.recover("r"));
        assert!(
            wait_until(Duration::from_secs(2), || svc.status()["r"].is_trust()),
            "recovery did not restore trust"
        );
        svc.shutdown();
    }

    #[test]
    fn live_qos_reflects_a_crash_and_recovery() {
        let mut svc = Service::new();
        svc.watch(
            ProcessSpec::named("q")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0))
                .seed(7),
        )
        .unwrap();
        assert!(svc.qos("missing").is_none());
        assert!(wait_until(Duration::from_secs(2), || svc.status()["q"].is_trust()));
        let q = svc.qos("q").expect("watched and running");
        assert!(q.window > 0.0 && q.t_transitions >= 1);

        assert!(svc.crash("q"));
        assert!(wait_until(Duration::from_secs(2), || svc.status()["q"].is_suspect()));
        assert!(svc.recover("q"));
        assert!(wait_until(Duration::from_secs(2), || svc.status()["q"].is_trust()));

        // Crash + recovery completed one full mistake interval.
        let q = svc.qos("q").expect("still watched");
        assert!(q.s_transitions >= 1, "{q}");
        assert!(q.mean_mistake_duration().is_some(), "{q}");
        assert!(q.query_accuracy() < 1.0);
        svc.shutdown();
    }

    #[test]
    fn scripted_crash_and_recovery_follow_the_plan() {
        let mut svc = Service::new();
        let plan = FaultPlan::new(6).crash(0.15).recover(0.4);
        svc.watch(
            ProcessSpec::named("planned")
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(fast_link(0.0))
                .seed(6)
                .fault_plan(plan),
        )
        .unwrap();
        // Phase 1: alive and trusted.
        assert!(wait_until(
            Duration::from_millis(140),
            || svc.status()["planned"].is_trust()
        ));
        // Phase 2: the scripted crash at t = 0.15 s is detected.
        assert!(
            wait_until(Duration::from_secs(2), || svc.status()["planned"].is_suspect()),
            "scripted crash not detected"
        );
        // Phase 3: the scripted recovery at t = 0.4 s restores trust.
        assert!(
            wait_until(Duration::from_secs(3), || svc.status()["planned"].is_trust()),
            "scripted recovery not detected"
        );
        assert_eq!(svc.health("planned"), Some(Health::Healthy));
        svc.shutdown();
    }
}
