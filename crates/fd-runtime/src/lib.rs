//! Real-time runtime for the paper's failure detectors.
//!
//! Everything in `fd-core` is a pure state machine over local time; this
//! crate supplies the wall-clock plumbing that turns those state machines
//! into a running failure-detection *service*:
//!
//! * [`clock`] — per-process clocks: a monotone wall clock plus a skewed
//!   view, so the unsynchronized-clocks setting of §6 is exercised for
//!   real (each process reads time through its own, offset, clock), and a
//!   jumpable clock for scripted NTP-step faults;
//! * [`error`] — typed [`RuntimeError`]s for the OS-facing plumbing and
//!   the queryable [`Health`] of supervised components;
//! * [`transport`] — an in-process lossy/delaying channel that injects the
//!   paper's `(p_L, D)` link law with *real* wall-clock delays. This
//!   substitutes for an actual WAN (not available here): every code path
//!   — timers, threads, out-of-order delivery — is the one a UDP
//!   deployment would run, only the medium is simulated;
//! * [`heartbeater`] — the `p` side: a thread sending `mᵢ` every `η`,
//!   retunable at runtime (for §8.1 adaptivity) and crashable on demand;
//! * [`monitor`] — the `q` side: a thread driving any
//!   [`FailureDetector`](fd_core::FailureDetector) through arrivals and
//!   deadlines, publishing the live output and recording the trace;
//! * [`service`] — a multi-process façade in the spirit of the shared
//!   failure-detection service the paper reports implementing (\[15\],
//!   §8.1): one monitor per watched process, QoS-driven configuration,
//!   and a queryable suspicion list.
//!
//! # Example
//!
//! ```
//! use fd_runtime::{LinkSpec, ProcessSpec, Service};
//! use fd_core::config::NfdUParams;
//! use fd_stats::dist::Exponential;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut service = Service::new();
//! service.watch(
//!     ProcessSpec::named("db-primary")
//!         .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
//!         .link(LinkSpec::new(0.0, Box::new(Exponential::with_mean(0.001)?))?),
//! )?;
//! std::thread::sleep(Duration::from_millis(100));
//! assert!(service.status()["db-primary"].is_trust());
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod heartbeater;
pub mod leader;
pub mod monitor;
pub mod service;
pub mod transport;
pub mod udp;

pub use clock::{Clock, JumpableClock, SkewedClock, WallClock};
pub use error::{Health, RuntimeError};
pub use heartbeater::{Heartbeater, IncarnationStore};
pub use leader::{LeaderElector, Leadership, TrustView};
pub use monitor::{DetectorFactory, Monitor};
pub use service::{ProcessSpec, Service, ServiceError};
pub use transport::{
    BadLossProbability, LinkSpec, LossyChannel, Receiver, Sender, DEFAULT_CHANNEL_CAPACITY,
};
pub use udp::{
    UdpHeartbeatReceiver, UdpHeartbeatSender, UdpSenderConfig, HEARTBEAT_MAGIC,
    HEARTBEAT_WIRE_VERSION,
};
