//! The monitored process `p`: a thread sending heartbeats every `η`.
//!
//! The paper assumes crash-*stop* processes; real deployments restart.
//! A restarted process whose identity is indistinguishable from its
//! previous life lets stale in-flight heartbeats vouch for the *new*
//! life (and vice versa), silently breaking the configurator's
//! `T_D`/`T_MR` guarantees. The crash-recovery literature (Reis &
//! Vieira's QoS analysis of crash-recovery leader election; Aguilera et
//! al.'s crash-recovery model) fixes this with **incarnation numbers**:
//! every recovery bumps a monotone counter that receivers compare, so
//! messages from an older incarnation are recognizably stale. The
//! [`Heartbeater`] tracks its incarnation across [`recover`]
//! (in-process restart) and, through an [`IncarnationStore`], across
//! full process restarts (on-disk persistence).
//!
//! [`recover`]: Heartbeater::recover

use crate::clock::Clock;
use crate::error::RuntimeError;
use crate::transport::Sender;
use fd_core::{Heartbeat, HysteresisConfig, HysteresisGate};
use parking_lot::{Condvar, Mutex};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Durable incarnation counter: a tiny on-disk file holding the last
/// incarnation a process ran as, so a *restarted* process (not just an
/// in-process [`Heartbeater::recover`]) resumes with a strictly larger
/// incarnation than anything it sent before the crash.
///
/// The file holds the incarnation as decimal ASCII. Updates are atomic
/// (write to a sibling temp file, then rename), so a crash mid-update
/// leaves either the old or the new value, never a torn one. A missing
/// file means "never ran": the first [`bump`](IncarnationStore::bump)
/// yields incarnation 1. A *corrupt* file is an error, not a silent
/// reset — restarting at incarnation 0 would let every pre-crash
/// datagram impersonate the new life.
#[derive(Debug, Clone)]
pub struct IncarnationStore {
    path: PathBuf,
}

impl IncarnationStore {
    /// Uses `path` as the durable incarnation record. No I/O happens
    /// until [`load`](Self::load) or [`bump`](Self::bump).
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads the stored incarnation. A missing file reads as 0 (never
    /// ran); a corrupt one is [`io::ErrorKind::InvalidData`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption maps to `InvalidData`.
    pub fn load(&self) -> io::Result<u64> {
        match std::fs::read_to_string(&self.path) {
            Ok(text) => text.trim().parse::<u64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt incarnation file {}: {e}", self.path.display()),
                )
            }),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    /// Atomically records `incarnation` as the current one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the write or rename.
    pub fn store(&self, incarnation: u64) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, incarnation.to_string())?;
        std::fs::rename(&tmp, &self.path)
    }

    /// Loads the stored incarnation, bumps it by one, persists the new
    /// value, and returns it — the restart handshake: call once per
    /// process start (and per recovery) *before* sending any heartbeat.
    ///
    /// # Errors
    ///
    /// Propagates [`load`](Self::load)/[`store`](Self::store) errors; on
    /// error nothing is persisted.
    pub fn bump(&self) -> io::Result<u64> {
        let next = self.load()?.checked_add(1).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "incarnation counter overflow")
        })?;
        self.store(next)?;
        Ok(next)
    }
}

#[derive(Debug)]
struct Control {
    /// Current intersending interval `η` (seconds).
    eta: f64,
    /// True while the process is "crashed": no heartbeats are sent. A
    /// crash is permanent in the paper's crash-stop model, but the
    /// runtime also supports scripted crash-*recovery* scenarios via
    /// [`Heartbeater::recover`].
    crashed: bool,
    /// Heartbeats sent so far (sequence numbers continue across a
    /// crash/recovery cycle, so a recovered process never reuses one).
    sent: u64,
    /// Current incarnation: bumped by every [`Heartbeater::recover`] so
    /// receivers can tell a restarted life from stale datagrams of the
    /// previous one.
    incarnation: u64,
}

struct Shared {
    control: Mutex<Control>,
    wake: Condvar,
}

/// Handle to a running heartbeater thread.
///
/// The thread stamps each `mᵢ` with its **own clock's** send time (so a
/// skewed clock produces skewed timestamps, as §6 requires) and sends
/// through the lossy transport. `η` can be retuned at runtime — the
/// knob the §8.1 adaptive scheme turns. All control methods take
/// `&self`, so a fault-plan driver on another thread can crash and
/// recover the process through a shared handle.
pub struct Heartbeater {
    shared: Arc<Shared>,
    sender: Arc<Sender>,
    clock: Arc<dyn Clock>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Durable incarnation record, if this heartbeater persists one;
    /// bumped on every recovery.
    store: Option<IncarnationStore>,
    /// Rate-limits control-plane `η` recommendations (not `set_eta`,
    /// which is the operator's direct knob and always obeyed).
    eta_gate: Mutex<HysteresisGate>,
}

impl Heartbeater {
    /// Spawns a heartbeater sending every `eta` seconds on `sender`,
    /// reading time (for timestamps and pacing) from `clock`. Starts at
    /// incarnation 0 with no persistence; see
    /// [`spawn_persistent`](Self::spawn_persistent) for the
    /// crash-recovery-correct variant.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the OS refuses the thread.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn spawn(
        eta: f64,
        sender: Sender,
        clock: impl Clock + 'static,
    ) -> Result<Self, RuntimeError> {
        Self::spawn_inner(eta, sender, clock, 0, None)
    }

    /// Spawns a heartbeater whose incarnation survives process restarts:
    /// the store's counter is loaded, bumped and persisted before the
    /// first heartbeat, and bumped again on every
    /// [`recover`](Self::recover). A process relaunched with the same
    /// store therefore always sends with a strictly larger incarnation
    /// than any datagram from its previous life.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Incarnation`] if the store cannot be read
    /// or written (including a corrupt counter file — silently restarting
    /// at 0 would defeat stale-datagram rejection), and
    /// [`RuntimeError::Spawn`] if the OS refuses the thread.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn spawn_persistent(
        eta: f64,
        sender: Sender,
        clock: impl Clock + 'static,
        store: IncarnationStore,
    ) -> Result<Self, RuntimeError> {
        let incarnation = store.bump().map_err(RuntimeError::incarnation)?;
        Self::spawn_inner(eta, sender, clock, incarnation, Some(store))
    }

    fn spawn_inner(
        eta: f64,
        sender: Sender,
        clock: impl Clock + 'static,
        incarnation: u64,
        store: Option<IncarnationStore>,
    ) -> Result<Self, RuntimeError> {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                eta,
                crashed: false,
                sent: 0,
                incarnation,
            }),
            wake: Condvar::new(),
        });
        let sender = Arc::new(sender);
        let clock: Arc<dyn Clock> = Arc::new(clock);
        let handle = spawn_thread(&shared, &sender, &clock)?;
        Ok(Self {
            shared,
            sender,
            clock,
            handle: Mutex::new(Some(handle)),
            store,
            eta_gate: Mutex::new(HysteresisGate::new(HysteresisConfig::default())),
        })
    }

    /// The current incarnation: 0 for a never-recovered in-memory
    /// heartbeater, and strictly increasing across recoveries (and, with
    /// [`spawn_persistent`](Self::spawn_persistent), across process
    /// restarts).
    pub fn incarnation(&self) -> u64 {
        self.shared.control.lock().incarnation
    }

    /// Changes the intersending interval `η` (takes effect for the next
    /// heartbeat).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn set_eta(&self, eta: f64) {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        self.shared.control.lock().eta = eta;
        self.shared.wake.notify_one();
    }

    /// The current `η`.
    pub fn eta(&self) -> f64 {
        self.shared.control.lock().eta
    }

    /// Replaces the hysteresis policy applied to
    /// [`recommend_eta`](Self::recommend_eta). The new gate starts with
    /// no admitted-change history, so the next material recommendation
    /// passes regardless of dwell.
    pub fn set_recommendation_hysteresis(&self, cfg: HysteresisConfig) {
        *self.eta_gate.lock() = HysteresisGate::new(cfg);
    }

    /// Applies a control-plane `η` recommendation, subject to
    /// hysteresis: changes within the deadband of the current `η`, or
    /// arriving before the minimum dwell since the last *applied*
    /// recommendation, are dropped. Unlike [`set_eta`](Self::set_eta),
    /// invalid values (non-finite or non-positive — these arrive off the
    /// wire, not from an operator) are rejected rather than panicking.
    /// Returns whether the recommendation was applied.
    pub fn recommend_eta(&self, eta: f64) -> bool {
        if !(eta > 0.0 && eta.is_finite()) {
            return false;
        }
        // Hold the gate across read-compare-apply so two racing
        // recommendations cannot both pass the deadband check.
        let mut gate = self.eta_gate.lock();
        let rel = HysteresisGate::rel_change(self.eta(), eta);
        if !gate.admit(self.clock.now(), rel) {
            return false;
        }
        self.set_eta(eta);
        true
    }

    /// Crashes the process: heartbeats stop (crash-stop, until an
    /// explicit [`Heartbeater::recover`]). Returns the number of
    /// heartbeats sent so far (including lost ones). Idempotent.
    pub fn crash(&self) -> u64 {
        {
            let mut c = self.shared.control.lock();
            c.crashed = true;
        }
        self.shared.wake.notify_one();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
        self.shared.control.lock().sent
    }

    /// Recovers a crashed process: heartbeating resumes on the same
    /// link, sequence numbers continuing where they stopped and the
    /// incarnation bumped (persisted first, if this heartbeater has an
    /// [`IncarnationStore`]) so receivers can reject the previous life's
    /// stale datagrams. A no-op on a live process.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Incarnation`] if the bumped incarnation
    /// cannot be persisted, and [`RuntimeError::Spawn`] if the
    /// replacement thread cannot be started; either way the process
    /// stays crashed.
    pub fn recover(&self) -> Result<(), RuntimeError> {
        let mut handle = self.handle.lock();
        if handle.is_some() {
            return Ok(()); // still running
        }
        let next = self
            .shared
            .control
            .lock()
            .incarnation
            .checked_add(1)
            .expect("incarnation counter overflow");
        // Persist before resuming sends: crash-during-recovery must never
        // reuse an incarnation already on the wire.
        if let Some(store) = &self.store {
            store.store(next).map_err(RuntimeError::incarnation)?;
        }
        {
            let mut c = self.shared.control.lock();
            c.incarnation = next;
            c.crashed = false;
        }
        match spawn_thread(&self.shared, &self.sender, &self.clock) {
            Ok(h) => {
                *handle = Some(h);
                Ok(())
            }
            Err(e) => {
                self.shared.control.lock().crashed = true;
                Err(e)
            }
        }
    }

    /// Whether the process is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.shared.control.lock().crashed
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        // Idempotent, non-blocking teardown per C-DTOR-BLOCK: signal and
        // detach-join quickly (the thread wakes immediately on `crashed`).
        self.crash();
    }
}

fn spawn_thread(
    shared: &Arc<Shared>,
    sender: &Arc<Sender>,
    clock: &Arc<dyn Clock>,
) -> Result<std::thread::JoinHandle<()>, RuntimeError> {
    let shared = Arc::clone(shared);
    let sender = Arc::clone(sender);
    let clock = Arc::clone(clock);
    std::thread::Builder::new()
        .name("fd-heartbeater".into())
        .spawn(move || run(shared, sender, clock))
        .map_err(|e| RuntimeError::spawn("fd-heartbeater", e))
}

fn run(shared: Arc<Shared>, sender: Arc<Sender>, clock: Arc<dyn Clock>) {
    let start = clock.now();
    let mut next_send = start;
    loop {
        let mut control = shared.control.lock();
        loop {
            if control.crashed {
                return;
            }
            let now = clock.now();
            if now >= next_send {
                break;
            }
            let wait = Duration::from_secs_f64((next_send - now).max(1e-6));
            shared.wake.wait_for(&mut control, wait);
        }
        let eta = control.eta;
        control.sent += 1;
        let seq = control.sent;
        drop(control);

        sender.send(Heartbeat::new(seq, clock.now()));
        next_send += eta;
        // If we fell behind (scheduler hiccup), don't burst: realign.
        let now = clock.now();
        if next_send < now {
            next_send = now + eta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SkewedClock, WallClock};
    use crate::transport::{LinkSpec, LossyChannel};
    use fd_stats::dist::Constant;
    use std::time::Duration;

    fn channel() -> (crate::transport::Sender, crate::transport::Receiver) {
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.0005).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 1);
        (tx, rx)
    }

    #[test]
    fn sends_sequenced_heartbeats_at_rate() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.01, tx, WallClock::new()).unwrap();
        let mut seqs = Vec::new();
        for _ in 0..5 {
            seqs.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq);
        }
        let sent = hb.crash();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert!(sent >= 5);
    }

    #[test]
    fn crash_stops_heartbeats() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let sent = hb.crash();
        assert!(hb.is_crashed());
        // Drain everything in flight; nothing further arrives.
        while rx.recv_timeout(Duration::from_millis(30)).is_ok() {}
        assert!(rx.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(sent >= 2, "sent {sent}");
    }

    #[test]
    fn recover_resumes_with_continuing_sequence_numbers() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        let sent = hb.crash();
        assert!(sent >= 2);
        while rx.recv_timeout(Duration::from_millis(30)).is_ok() {}

        hb.recover().unwrap();
        assert!(!hb.is_crashed());
        let next = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            next.seq > sent,
            "post-recovery seq {} must extend pre-crash count {sent}",
            next.seq
        );
        hb.crash();
    }

    #[test]
    fn recover_is_a_no_op_while_alive() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        hb.recover().unwrap();
        assert!(!hb.is_crashed());
        assert!(rx.recv_timeout(Duration::from_secs(2)).is_ok());
        hb.crash();
    }

    #[test]
    fn crash_is_idempotent() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        let a = hb.crash();
        let b = hb.crash();
        assert_eq!(a, b);
    }

    #[test]
    fn set_eta_changes_rate() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.5, tx, WallClock::new()).unwrap();
        assert_eq!(hb.eta(), 0.5);
        // First heartbeat comes immediately; then speed up drastically.
        let _ = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        hb.set_eta(0.005);
        assert_eq!(hb.eta(), 0.005);
        // At the old rate the next heartbeat is ~0.5 s away; at the new
        // rate several arrive quickly. (The pending wait still uses the
        // old deadline; tolerate one slow gap.)
        let hb2 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let t0 = std::time::Instant::now();
        let hb3 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(hb3.seq > hb2.seq);
        assert!(t0.elapsed() < Duration::from_millis(300));
        hb.crash();
    }

    #[test]
    fn recommend_eta_applies_hysteresis() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.5, tx, WallClock::new()).unwrap();
        // Garbage off the wire is dropped, not a panic.
        assert!(!hb.recommend_eta(0.0));
        assert!(!hb.recommend_eta(-1.0));
        assert!(!hb.recommend_eta(f64::NAN));
        assert!(!hb.recommend_eta(f64::INFINITY));
        assert_eq!(hb.eta(), 0.5);
        // Within the 5% deadband: ignored.
        assert!(!hb.recommend_eta(0.51));
        assert_eq!(hb.eta(), 0.5);
        // First material recommendation passes (no dwell history yet).
        assert!(hb.recommend_eta(0.25));
        assert_eq!(hb.eta(), 0.25);
        // A second material change inside the default 5 s dwell is held.
        assert!(!hb.recommend_eta(0.1));
        assert_eq!(hb.eta(), 0.25);
        // Resetting the policy clears the dwell history.
        hb.set_recommendation_hysteresis(HysteresisConfig { min_dwell: 0.0, deadband: 0.05 });
        assert!(hb.recommend_eta(0.1));
        assert_eq!(hb.eta(), 0.1);
        hb.crash();
    }

    #[test]
    fn timestamps_use_senders_clock() {
        let (tx, rx) = channel();
        let skew = 1000.0;
        let hb = Heartbeater::spawn(0.01, tx, SkewedClock::new(WallClock::new(), skew)).unwrap();
        let m = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(m.send_time >= skew, "timestamp {} lacks skew", m.send_time);
        hb.crash();
    }

    #[test]
    fn drop_is_clean_without_explicit_crash() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.01, tx, WallClock::new()).unwrap();
        drop(hb); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn rejects_zero_eta() {
        let (tx, _rx) = channel();
        let _ = Heartbeater::spawn(0.0, tx, WallClock::new());
    }

    #[test]
    fn recover_bumps_incarnation() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        assert_eq!(hb.incarnation(), 0);
        hb.recover().unwrap(); // alive: no-op, no bump
        assert_eq!(hb.incarnation(), 0);
        hb.crash();
        hb.recover().unwrap();
        assert_eq!(hb.incarnation(), 1);
        hb.crash();
        hb.recover().unwrap();
        assert_eq!(hb.incarnation(), 2);
        hb.crash();
    }

    fn temp_store(tag: &str) -> IncarnationStore {
        let path = std::env::temp_dir().join(format!(
            "fd-incarnation-{tag}-{}.txt",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        IncarnationStore::at(path)
    }

    #[test]
    fn incarnation_store_survives_process_restarts() {
        let store = temp_store("restart");
        assert_eq!(store.load().unwrap(), 0, "missing file reads as 0");
        {
            let (tx, _rx) = channel();
            let hb =
                Heartbeater::spawn_persistent(0.005, tx, WallClock::new(), store.clone())
                    .unwrap();
            assert_eq!(hb.incarnation(), 1, "first life is incarnation 1");
            hb.crash();
            hb.recover().unwrap();
            assert_eq!(hb.incarnation(), 2);
            hb.crash();
        }
        // "Restart the process": a new heartbeater on the same store must
        // exceed everything the previous life ever sent.
        let (tx, _rx) = channel();
        let hb =
            Heartbeater::spawn_persistent(0.005, tx, WallClock::new(), store.clone()).unwrap();
        assert_eq!(hb.incarnation(), 3);
        hb.crash();
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn corrupt_incarnation_store_is_an_error_not_a_reset() {
        let store = temp_store("corrupt");
        std::fs::write(store.path(), "not a number").unwrap();
        let err = store.load().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let (tx, _rx) = channel();
        match Heartbeater::spawn_persistent(0.005, tx, WallClock::new(), store.clone()) {
            Err(RuntimeError::Incarnation { .. }) => {}
            Err(other) => panic!("expected Incarnation error, got {other}"),
            Ok(_) => panic!("expected Incarnation error, got a running heartbeater"),
        }
        let _ = std::fs::remove_file(store.path());
    }
}
