//! The monitored process `p`: a thread sending heartbeats every `η`.

use crate::clock::Clock;
use crate::error::RuntimeError;
use crate::transport::Sender;
use fd_core::Heartbeat;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Control {
    /// Current intersending interval `η` (seconds).
    eta: f64,
    /// True while the process is "crashed": no heartbeats are sent. A
    /// crash is permanent in the paper's crash-stop model, but the
    /// runtime also supports scripted crash-*recovery* scenarios via
    /// [`Heartbeater::recover`].
    crashed: bool,
    /// Heartbeats sent so far (sequence numbers continue across a
    /// crash/recovery cycle, so a recovered process never reuses one).
    sent: u64,
}

struct Shared {
    control: Mutex<Control>,
    wake: Condvar,
}

/// Handle to a running heartbeater thread.
///
/// The thread stamps each `mᵢ` with its **own clock's** send time (so a
/// skewed clock produces skewed timestamps, as §6 requires) and sends
/// through the lossy transport. `η` can be retuned at runtime — the
/// knob the §8.1 adaptive scheme turns. All control methods take
/// `&self`, so a fault-plan driver on another thread can crash and
/// recover the process through a shared handle.
pub struct Heartbeater {
    shared: Arc<Shared>,
    sender: Arc<Sender>,
    clock: Arc<dyn Clock>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Heartbeater {
    /// Spawns a heartbeater sending every `eta` seconds on `sender`,
    /// reading time (for timestamps and pacing) from `clock`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the OS refuses the thread.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn spawn(
        eta: f64,
        sender: Sender,
        clock: impl Clock + 'static,
    ) -> Result<Self, RuntimeError> {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        let shared = Arc::new(Shared {
            control: Mutex::new(Control {
                eta,
                crashed: false,
                sent: 0,
            }),
            wake: Condvar::new(),
        });
        let sender = Arc::new(sender);
        let clock: Arc<dyn Clock> = Arc::new(clock);
        let handle = spawn_thread(&shared, &sender, &clock)?;
        Ok(Self {
            shared,
            sender,
            clock,
            handle: Mutex::new(Some(handle)),
        })
    }

    /// Changes the intersending interval `η` (takes effect for the next
    /// heartbeat).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn set_eta(&self, eta: f64) {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        self.shared.control.lock().eta = eta;
        self.shared.wake.notify_one();
    }

    /// The current `η`.
    pub fn eta(&self) -> f64 {
        self.shared.control.lock().eta
    }

    /// Crashes the process: heartbeats stop (crash-stop, until an
    /// explicit [`Heartbeater::recover`]). Returns the number of
    /// heartbeats sent so far (including lost ones). Idempotent.
    pub fn crash(&self) -> u64 {
        {
            let mut c = self.shared.control.lock();
            c.crashed = true;
        }
        self.shared.wake.notify_one();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
        self.shared.control.lock().sent
    }

    /// Recovers a crashed process: heartbeating resumes on the same
    /// link, sequence numbers continuing where they stopped. A no-op on
    /// a live process.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the replacement thread cannot
    /// be started (the process then stays crashed).
    pub fn recover(&self) -> Result<(), RuntimeError> {
        let mut handle = self.handle.lock();
        if handle.is_some() {
            return Ok(()); // still running
        }
        self.shared.control.lock().crashed = false;
        match spawn_thread(&self.shared, &self.sender, &self.clock) {
            Ok(h) => {
                *handle = Some(h);
                Ok(())
            }
            Err(e) => {
                self.shared.control.lock().crashed = true;
                Err(e)
            }
        }
    }

    /// Whether the process is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.shared.control.lock().crashed
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        // Idempotent, non-blocking teardown per C-DTOR-BLOCK: signal and
        // detach-join quickly (the thread wakes immediately on `crashed`).
        self.crash();
    }
}

fn spawn_thread(
    shared: &Arc<Shared>,
    sender: &Arc<Sender>,
    clock: &Arc<dyn Clock>,
) -> Result<std::thread::JoinHandle<()>, RuntimeError> {
    let shared = Arc::clone(shared);
    let sender = Arc::clone(sender);
    let clock = Arc::clone(clock);
    std::thread::Builder::new()
        .name("fd-heartbeater".into())
        .spawn(move || run(shared, sender, clock))
        .map_err(|e| RuntimeError::spawn("fd-heartbeater", e))
}

fn run(shared: Arc<Shared>, sender: Arc<Sender>, clock: Arc<dyn Clock>) {
    let start = clock.now();
    let mut next_send = start;
    loop {
        let mut control = shared.control.lock();
        loop {
            if control.crashed {
                return;
            }
            let now = clock.now();
            if now >= next_send {
                break;
            }
            let wait = Duration::from_secs_f64((next_send - now).max(1e-6));
            shared.wake.wait_for(&mut control, wait);
        }
        let eta = control.eta;
        control.sent += 1;
        let seq = control.sent;
        drop(control);

        sender.send(Heartbeat::new(seq, clock.now()));
        next_send += eta;
        // If we fell behind (scheduler hiccup), don't burst: realign.
        let now = clock.now();
        if next_send < now {
            next_send = now + eta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SkewedClock, WallClock};
    use crate::transport::{LinkSpec, LossyChannel};
    use fd_stats::dist::Constant;
    use std::time::Duration;

    fn channel() -> (crate::transport::Sender, crate::transport::Receiver) {
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.0005).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 1);
        (tx, rx)
    }

    #[test]
    fn sends_sequenced_heartbeats_at_rate() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.01, tx, WallClock::new()).unwrap();
        let mut seqs = Vec::new();
        for _ in 0..5 {
            seqs.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq);
        }
        let sent = hb.crash();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert!(sent >= 5);
    }

    #[test]
    fn crash_stops_heartbeats() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let sent = hb.crash();
        assert!(hb.is_crashed());
        // Drain everything in flight; nothing further arrives.
        while rx.recv_timeout(Duration::from_millis(30)).is_ok() {}
        assert!(rx.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(sent >= 2, "sent {sent}");
    }

    #[test]
    fn recover_resumes_with_continuing_sequence_numbers() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        let sent = hb.crash();
        assert!(sent >= 2);
        while rx.recv_timeout(Duration::from_millis(30)).is_ok() {}

        hb.recover().unwrap();
        assert!(!hb.is_crashed());
        let next = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(
            next.seq > sent,
            "post-recovery seq {} must extend pre-crash count {sent}",
            next.seq
        );
        hb.crash();
    }

    #[test]
    fn recover_is_a_no_op_while_alive() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        hb.recover().unwrap();
        assert!(!hb.is_crashed());
        assert!(rx.recv_timeout(Duration::from_secs(2)).is_ok());
        hb.crash();
    }

    #[test]
    fn crash_is_idempotent() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.005, tx, WallClock::new()).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        let a = hb.crash();
        let b = hb.crash();
        assert_eq!(a, b);
    }

    #[test]
    fn set_eta_changes_rate() {
        let (tx, rx) = channel();
        let hb = Heartbeater::spawn(0.5, tx, WallClock::new()).unwrap();
        assert_eq!(hb.eta(), 0.5);
        // First heartbeat comes immediately; then speed up drastically.
        let _ = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        hb.set_eta(0.005);
        assert_eq!(hb.eta(), 0.005);
        // At the old rate the next heartbeat is ~0.5 s away; at the new
        // rate several arrive quickly. (The pending wait still uses the
        // old deadline; tolerate one slow gap.)
        let hb2 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let t0 = std::time::Instant::now();
        let hb3 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(hb3.seq > hb2.seq);
        assert!(t0.elapsed() < Duration::from_millis(300));
        hb.crash();
    }

    #[test]
    fn timestamps_use_senders_clock() {
        let (tx, rx) = channel();
        let skew = 1000.0;
        let hb = Heartbeater::spawn(0.01, tx, SkewedClock::new(WallClock::new(), skew)).unwrap();
        let m = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(m.send_time >= skew, "timestamp {} lacks skew", m.send_time);
        hb.crash();
    }

    #[test]
    fn drop_is_clean_without_explicit_crash() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.01, tx, WallClock::new()).unwrap();
        drop(hb); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn rejects_zero_eta() {
        let (tx, _rx) = channel();
        let _ = Heartbeater::spawn(0.0, tx, WallClock::new());
    }
}
