//! The monitored process `p`: a thread sending heartbeats every `η`.

use crate::clock::Clock;
use crate::transport::Sender;
use fd_core::Heartbeat;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
struct Control {
    /// Current intersending interval `η` (seconds).
    eta: f64,
    /// True once the process "crashed" (or was shut down): no further
    /// heartbeats are sent, matching the paper's crash-stop model.
    crashed: bool,
}

struct Shared {
    control: Mutex<Control>,
    wake: Condvar,
}

/// Handle to a running heartbeater thread.
///
/// The thread stamps each `mᵢ` with its **own clock's** send time (so a
/// skewed clock produces skewed timestamps, as §6 requires) and sends
/// through the lossy transport. `η` can be retuned at runtime — the
/// knob the §8.1 adaptive scheme turns.
pub struct Heartbeater {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Heartbeater {
    /// Spawns a heartbeater sending every `eta` seconds on `sender`,
    /// reading time (for timestamps and pacing) from `clock`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn spawn(eta: f64, sender: Sender, clock: impl Clock + 'static) -> Self {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        let shared = Arc::new(Shared {
            control: Mutex::new(Control { eta, crashed: false }),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("fd-heartbeater".into())
            .spawn(move || run(thread_shared, sender, clock))
            .expect("spawn heartbeater");
        Self {
            shared,
            handle: Some(handle),
        }
    }

    /// Changes the intersending interval `η` (takes effect for the next
    /// heartbeat).
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn set_eta(&self, eta: f64) {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive and finite");
        self.shared.control.lock().eta = eta;
        self.shared.wake.notify_one();
    }

    /// The current `η`.
    pub fn eta(&self) -> f64 {
        self.shared.control.lock().eta
    }

    /// Crashes the process: heartbeats stop permanently (crash-stop).
    /// Returns the number of heartbeats sent (including lost ones).
    pub fn crash(&mut self) -> u64 {
        {
            let mut c = self.shared.control.lock();
            c.crashed = true;
        }
        self.shared.wake.notify_one();
        match self.handle.take() {
            Some(h) => h.join().expect("heartbeater thread panicked"),
            None => 0,
        }
    }

    /// Whether the process has crashed.
    pub fn is_crashed(&self) -> bool {
        self.shared.control.lock().crashed
    }
}

impl Drop for Heartbeater {
    fn drop(&mut self) {
        // Idempotent, non-blocking teardown per C-DTOR-BLOCK: signal and
        // detach-join quickly (the thread wakes immediately on `crashed`).
        if self.handle.is_some() {
            self.crash();
        }
    }
}

fn run(shared: Arc<Shared>, sender: Sender, clock: impl Clock) -> u64 {
    let mut seq: u64 = 0;
    let start = clock.now();
    let mut next_send = start;
    loop {
        let mut control = shared.control.lock();
        loop {
            if control.crashed {
                return seq;
            }
            let now = clock.now();
            if now >= next_send {
                break;
            }
            let wait = Duration::from_secs_f64((next_send - now).max(1e-6));
            shared.wake.wait_for(&mut control, wait);
        }
        let eta = control.eta;
        drop(control);

        seq += 1;
        sender.send(Heartbeat::new(seq, clock.now()));
        next_send += eta;
        // If we fell behind (scheduler hiccup), don't burst: realign.
        let now = clock.now();
        if next_send < now {
            next_send = now + eta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SkewedClock, WallClock};
    use crate::transport::{LinkSpec, LossyChannel};
    use fd_stats::dist::Constant;
    use std::time::Duration;

    fn channel() -> (crate::transport::Sender, crate::transport::Receiver) {
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.0005).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 1);
        (tx, rx)
    }

    #[test]
    fn sends_sequenced_heartbeats_at_rate() {
        let (tx, rx) = channel();
        let mut hb = Heartbeater::spawn(0.01, tx, WallClock::new());
        let mut seqs = Vec::new();
        for _ in 0..5 {
            seqs.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq);
        }
        let sent = hb.crash();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert!(sent >= 5);
    }

    #[test]
    fn crash_stops_heartbeats() {
        let (tx, rx) = channel();
        let mut hb = Heartbeater::spawn(0.005, tx, WallClock::new());
        std::thread::sleep(Duration::from_millis(20));
        let sent = hb.crash();
        assert!(hb.is_crashed());
        // Drain everything in flight; nothing further arrives.
        while rx.recv_timeout(Duration::from_millis(30)).is_ok() {}
        assert!(rx.recv_timeout(Duration::from_millis(30)).is_err());
        assert!(sent >= 2, "sent {sent}");
    }

    #[test]
    fn set_eta_changes_rate() {
        let (tx, rx) = channel();
        let mut hb = Heartbeater::spawn(0.5, tx, WallClock::new());
        assert_eq!(hb.eta(), 0.5);
        // First heartbeat comes immediately; then speed up drastically.
        let _ = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        hb.set_eta(0.005);
        assert_eq!(hb.eta(), 0.005);
        // At the old rate the next heartbeat is ~0.5 s away; at the new
        // rate several arrive quickly. (The pending wait still uses the
        // old deadline; tolerate one slow gap.)
        let hb2 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let t0 = std::time::Instant::now();
        let hb3 = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(hb3.seq > hb2.seq);
        assert!(t0.elapsed() < Duration::from_millis(300));
        hb.crash();
    }

    #[test]
    fn timestamps_use_senders_clock() {
        let (tx, rx) = channel();
        let skew = 1000.0;
        let mut hb = Heartbeater::spawn(0.01, tx, SkewedClock::new(WallClock::new(), skew));
        let m = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(m.send_time >= skew, "timestamp {} lacks skew", m.send_time);
        hb.crash();
    }

    #[test]
    fn drop_is_clean_without_explicit_crash() {
        let (tx, _rx) = channel();
        let hb = Heartbeater::spawn(0.01, tx, WallClock::new());
        drop(hb); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn rejects_zero_eta() {
        let (tx, _rx) = channel();
        Heartbeater::spawn(0.0, tx, WallClock::new());
    }
}
