//! The monitoring process `q`: a thread driving a failure detector in
//! real time.

use crate::clock::Clock;
use crate::transport::Receiver;
use crossbeam::channel::RecvTimeoutError;
use fd_metrics::{FdOutput, TraceRecorder, TransitionTrace};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Builds the detector driven by a [`Monitor`]. Boxed so callers can use
/// any [`FailureDetector`](fd_core::FailureDetector).
pub type DetectorFactory = Box<dyn FnOnce() -> Box<dyn fd_core::FailureDetector + Send> + Send>;

struct Shared {
    /// 0 = Trust, 1 = Suspect (for lock-free `output()` reads).
    output: AtomicU8,
    stop: AtomicBool,
    recorder: Mutex<Option<TraceRecorder>>,
}

/// Handle to a running monitor thread.
///
/// The thread sleeps until the earlier of (a) the next heartbeat arrival
/// and (b) the detector's next internal deadline, feeding each to the
/// state machine with timestamps from the **monitor's own clock** (which
/// may be skewed relative to the sender's, §6). The current output is
/// readable lock-free; the full transition trace is returned by
/// [`Monitor::stop`].
pub struct Monitor {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
    clock: Arc<dyn Clock>,
}

impl Monitor {
    /// Spawns a monitor thread driving `detector` with heartbeats from
    /// `rx`, reading time from `clock`.
    pub fn spawn(
        detector: Box<dyn fd_core::FailureDetector + Send>,
        rx: Receiver,
        clock: impl Clock + 'static,
    ) -> Self {
        let clock: Arc<dyn Clock> = Arc::new(clock);
        let shared = Arc::new(Shared {
            output: AtomicU8::new(1), // detectors start suspecting
            stop: AtomicBool::new(false),
            recorder: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_clock = Arc::clone(&clock);
        let handle = std::thread::Builder::new()
            .name("fd-monitor".into())
            .spawn(move || drive(detector, rx, thread_clock, thread_shared))
            .expect("spawn monitor");
        Self {
            shared,
            handle: Some(handle),
            clock,
        }
    }

    /// The detector's current output (lock-free snapshot).
    pub fn output(&self) -> FdOutput {
        if self.shared.output.load(Ordering::Acquire) == 0 {
            FdOutput::Trust
        } else {
            FdOutput::Suspect
        }
    }

    /// Stops the monitor and returns the recorded transition trace
    /// (timestamps on the monitor's clock).
    pub fn stop(mut self) -> TransitionTrace {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().expect("monitor thread panicked");
        }
        let rec = self
            .shared
            .recorder
            .lock()
            .take()
            .expect("recorder present after join");
        let end = self.clock.now().max(rec.latest_time());
        rec.finish(end)
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn drive(
    mut fd: Box<dyn fd_core::FailureDetector + Send>,
    rx: Receiver,
    clock: Arc<dyn Clock>,
    shared: Arc<Shared>,
) {
    let start = clock.now();
    fd.advance(start);
    *shared.recorder.lock() = Some(TraceRecorder::new(start, fd.output()));
    publish(&shared, fd.output());

    while !shared.stop.load(Ordering::Acquire) {
        let now = clock.now();
        // Sleep until the next deadline (or poll every 50 ms when idle).
        let wait = match fd.next_deadline() {
            Some(d) if d <= now => Duration::ZERO,
            Some(d) => Duration::from_secs_f64((d - now).min(0.05)),
            None => Duration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(hb) => {
                let t = clock.now();
                fd.on_heartbeat(t, hb);
                record(&shared, t, fd.output());
            }
            Err(RecvTimeoutError::Timeout) => {
                let t = clock.now();
                // Apply any deadline that elapsed; record at the deadline
                // instant for an exact trace.
                if let Some(d) = fd.next_deadline() {
                    if d <= t {
                        fd.advance(t);
                        record(&shared, d.max(start), fd.output());
                        continue;
                    }
                }
                fd.advance(t);
                record(&shared, t, fd.output());
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Sender gone (crashed and channel drained): keep driving
                // deadlines until stopped.
                let t = clock.now();
                fd.advance(t);
                record(&shared, t, fd.output());
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn record(shared: &Shared, t: f64, out: FdOutput) {
    if let Some(rec) = shared.recorder.lock().as_mut() {
        // Guard against clock jitter below recorder resolution.
        if t >= rec.latest_time() {
            rec.record(t, out);
        }
    }
    publish(shared, out);
}

fn publish(shared: &Shared, out: FdOutput) {
    shared
        .output
        .store(u8::from(out == FdOutput::Suspect), Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SkewedClock, WallClock};
    use crate::heartbeater::Heartbeater;
    use crate::transport::{LinkSpec, LossyChannel};
    use fd_core::detectors::{NfdE, NfdS};
    use fd_stats::dist::Constant;

    /// End-to-end: clean 5 ms-delay link, η = 10 ms, NFD-S with δ = 30 ms.
    #[test]
    fn trusts_live_process_then_detects_crash() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.005).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 1);
        let mut hb = Heartbeater::spawn(0.01, tx, clock.clone());
        let fd = NfdS::new(0.01, 0.03).unwrap();
        let monitor = Monitor::spawn(Box::new(fd), rx, clock.clone());

        // Let it reach steady state and confirm trust.
        std::thread::sleep(Duration::from_millis(120));
        assert!(monitor.output().is_trust(), "should trust a live process");

        // Crash p; detection must follow within δ + η (+ scheduling slop).
        let crash_at = clock.now();
        hb.crash();
        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_suspect(), "crash not detected");

        let trace = monitor.stop();
        let d = fd_metrics::detection_time(&trace, crash_at);
        let elapsed = d.as_seconds();
        assert!(
            elapsed <= 0.04 + 0.05,
            "T_D = {elapsed} vs bound 0.04 (+ slop)"
        );
    }

    #[test]
    fn nfd_e_works_with_skewed_clocks() {
        // Sender's clock is 500 s ahead; NFD-E must not care (it ignores
        // sender timestamps entirely).
        let base = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 2);
        let mut hb = Heartbeater::spawn(0.01, tx, SkewedClock::new(base.clone(), 500.0));
        let fd = NfdE::new(0.01, 0.03, 8).unwrap();
        let monitor = Monitor::spawn(Box::new(fd), rx, base.clone());

        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_trust(), "skew broke NFD-E");
        hb.crash();
        std::thread::sleep(Duration::from_millis(120));
        assert!(monitor.output().is_suspect());
        let trace = monitor.stop();
        assert!(trace.transitions().len() >= 2, "T then S at least");
    }

    #[test]
    fn suspects_when_no_heartbeats_ever_arrive() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(1.0, Box::new(Constant::new(0.001).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 3);
        let mut hb = Heartbeater::spawn(0.01, tx, clock.clone());
        let monitor = Monitor::spawn(Box::new(NfdS::new(0.01, 0.02).unwrap()), rx, clock);
        std::thread::sleep(Duration::from_millis(80));
        assert!(monitor.output().is_suspect());
        hb.crash();
        let trace = monitor.stop();
        assert_eq!(trace.transitions().len(), 0, "never trusted");
    }

    #[test]
    fn stop_returns_well_formed_trace() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.001).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 4);
        let mut hb = Heartbeater::spawn(0.005, tx, clock.clone());
        let monitor = Monitor::spawn(Box::new(NfdS::new(0.005, 0.02).unwrap()), rx, clock);
        std::thread::sleep(Duration::from_millis(60));
        hb.crash();
        let trace = monitor.stop();
        assert!(trace.end() >= trace.start());
        // Output at any queried time is defined.
        let mid = 0.5 * (trace.start() + trace.end());
        let _ = trace.output_at(mid);
    }
}
