//! The monitoring process `q`: a supervised thread driving a failure
//! detector in real time.

use crate::clock::Clock;
use crate::error::{Health, RuntimeError};
use crate::transport::Receiver;
use crossbeam::channel::RecvTimeoutError;
use fd_metrics::{FdOutput, ObservedQos, OnlineQos, TraceRecorder, TransitionTrace};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Builds (and, under supervision, *re*builds) the detector driven by a
/// [`Monitor`]. Boxed so callers can use any
/// [`FailureDetector`](fd_core::FailureDetector); `Fn` (not `FnOnce`) so
/// a supervisor can construct a fresh instance after a panic.
pub type DetectorFactory = Box<dyn Fn() -> Box<dyn fd_core::FailureDetector + Send> + Send>;

/// Where the supervisor gets detector instances from.
enum DetectorSource {
    /// A single pre-built detector: no rebuild possible after a panic.
    Once(Option<Box<dyn fd_core::FailureDetector + Send>>),
    /// A factory: each restart gets a fresh instance.
    Factory(DetectorFactory),
}

impl DetectorSource {
    fn next(&mut self) -> Option<Box<dyn fd_core::FailureDetector + Send>> {
        match self {
            DetectorSource::Once(slot) => slot.take(),
            DetectorSource::Factory(f) => Some(f()),
        }
    }
}

struct Shared {
    /// 0 = Trust, 1 = Suspect (for lock-free `output()` reads).
    output: AtomicU8,
    stop: AtomicBool,
    health: Mutex<Health>,
    restarts: AtomicU32,
    recorder: Mutex<Option<TraceRecorder>>,
    /// Online interval accounting over the published output stream; fed
    /// at the same points as the recorder, so live QoS answers match
    /// what batch analysis of the final trace will say.
    qos: Mutex<Option<OnlineQos>>,
}

/// Handle to a running monitor thread.
///
/// The thread sleeps until the earlier of (a) the next heartbeat arrival
/// and (b) the detector's next internal deadline, feeding each to the
/// state machine with timestamps from the **monitor's own clock** (which
/// may be skewed relative to the sender's, §6). The current output is
/// readable lock-free; the full transition trace is returned by
/// [`Monitor::stop`].
///
/// # Supervision
///
/// The drive loop runs under a panic supervisor. When the detector
/// panics, the monitor fails **safe**: it publishes `Suspect` (a broken
/// monitor cannot vouch for liveness) and records the transition. A
/// monitor spawned with [`Monitor::spawn_supervised`] then rebuilds the
/// detector from its factory and resumes — up to `max_restarts` times —
/// reporting [`Health::Degraded`]; past the budget (or for the
/// single-detector [`Monitor::spawn`]) it reports [`Health::Stopped`]
/// and keeps publishing `Suspect`.
pub struct Monitor {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
    clock: Arc<dyn Clock>,
}

impl Monitor {
    /// Spawns a monitor thread driving `detector` with heartbeats from
    /// `rx`, reading time from `clock`. A detector panic stops this
    /// monitor (there is no way to rebuild a moved-in detector); use
    /// [`Monitor::spawn_supervised`] for restart-on-panic.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the OS refuses the thread.
    pub fn spawn(
        detector: Box<dyn fd_core::FailureDetector + Send>,
        rx: Receiver,
        clock: impl Clock + 'static,
    ) -> Result<Self, RuntimeError> {
        Self::spawn_inner(DetectorSource::Once(Some(detector)), rx, clock, 0)
    }

    /// Spawns a supervised monitor: detectors come from `factory`, and a
    /// panicking detector is replaced by a fresh instance up to
    /// `max_restarts` times before the monitor stops.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the OS refuses the thread.
    pub fn spawn_supervised(
        factory: DetectorFactory,
        rx: Receiver,
        clock: impl Clock + 'static,
        max_restarts: u32,
    ) -> Result<Self, RuntimeError> {
        Self::spawn_inner(DetectorSource::Factory(factory), rx, clock, max_restarts)
    }

    fn spawn_inner(
        source: DetectorSource,
        rx: Receiver,
        clock: impl Clock + 'static,
        max_restarts: u32,
    ) -> Result<Self, RuntimeError> {
        let clock: Arc<dyn Clock> = Arc::new(clock);
        let shared = Arc::new(Shared {
            output: AtomicU8::new(1), // detectors start suspecting
            stop: AtomicBool::new(false),
            health: Mutex::new(Health::Healthy),
            restarts: AtomicU32::new(0),
            recorder: Mutex::new(None),
            qos: Mutex::new(None),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_clock = Arc::clone(&clock);
        let handle = std::thread::Builder::new()
            .name("fd-monitor".into())
            .spawn(move || supervise(source, rx, thread_clock, thread_shared, max_restarts))
            .map_err(|e| RuntimeError::spawn("fd-monitor", e))?;
        Ok(Self {
            shared,
            handle: Some(handle),
            clock,
        })
    }

    /// The detector's current output (lock-free snapshot).
    pub fn output(&self) -> FdOutput {
        if self.shared.output.load(Ordering::Acquire) == 0 {
            FdOutput::Trust
        } else {
            FdOutput::Suspect
        }
    }

    /// The monitor's current health.
    pub fn health(&self) -> Health {
        self.shared.health.lock().clone()
    }

    /// How many times the supervisor has rebuilt a panicked detector.
    pub fn restarts(&self) -> u32 {
        self.shared.restarts.load(Ordering::Acquire)
    }

    /// Live QoS of this watch so far: the online interval metrics
    /// (`P_A`, `E(T_MR)`, `E(T_M)`, `E(T_G)`, transition counts) over the
    /// output stream up to *now*, without stopping the monitor. `None`
    /// until the drive loop has published its first output.
    pub fn qos(&self) -> Option<ObservedQos> {
        let now = self.clock.now();
        self.shared.qos.lock().map(|q| q.observed(now))
    }

    /// Stops the monitor and returns the recorded transition trace
    /// (timestamps on the monitor's clock).
    pub fn stop(mut self) -> TransitionTrace {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let now = self.clock.now();
        let rec = self
            .shared
            .recorder
            .lock()
            .take()
            // A detector that panicked in its very first step leaves no
            // recorder; its trace is "suspected throughout".
            .unwrap_or_else(|| TraceRecorder::new(now, FdOutput::Suspect));
        let end = now.max(rec.latest_time());
        rec.finish(end)
    }
}

impl Drop for Monitor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Runs `drive` under a panic supervisor, rebuilding the detector from
/// `source` after each panic until the restart budget is exhausted.
fn supervise(
    mut source: DetectorSource,
    rx: Receiver,
    clock: Arc<dyn Clock>,
    shared: Arc<Shared>,
    max_restarts: u32,
) {
    loop {
        let Some(fd) = source.next() else { break };
        match catch_unwind(AssertUnwindSafe(|| drive(fd, &rx, &clock, &shared))) {
            Ok(()) => break, // stop() requested; clean exit
            Err(payload) => {
                // Fail safe: a broken monitor cannot vouch for liveness.
                let t = clock.now();
                record(&shared, t, FdOutput::Suspect);
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let reason = panic_reason(payload.as_ref());
                let used = shared.restarts.load(Ordering::Acquire);
                let can_retry =
                    used < max_restarts && matches!(source, DetectorSource::Factory(_));
                if !can_retry {
                    *shared.health.lock() = Health::Stopped;
                    return;
                }
                shared.restarts.store(used + 1, Ordering::Release);
                *shared.health.lock() = Health::Degraded { reason };
            }
        }
    }
    *shared.health.lock() = Health::Stopped;
}

/// Best-effort extraction of a panic message.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("detector panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("detector panicked: {s}")
    } else {
        "detector panicked".to_string()
    }
}

fn drive(
    mut fd: Box<dyn fd_core::FailureDetector + Send>,
    rx: &Receiver,
    clock: &Arc<dyn Clock>,
    shared: &Arc<Shared>,
) {
    let start = clock.now();
    fd.advance(start);
    {
        // On a supervised restart the original recorder (and its trace so
        // far) is kept; only the first incarnation creates it. Same for
        // the online QoS tracker: it follows the output stream, not
        // detector lives.
        let mut rec = shared.recorder.lock();
        if rec.is_none() {
            *rec = Some(TraceRecorder::new(start, fd.output()));
        }
        let mut qos = shared.qos.lock();
        if qos.is_none() {
            *qos = Some(OnlineQos::new(start, fd.output()));
        }
    }
    record(shared, start, fd.output());

    while !shared.stop.load(Ordering::Acquire) {
        let now = clock.now();
        // Sleep until the next deadline (or poll every 50 ms when idle).
        let wait = match fd.next_deadline() {
            Some(d) if d <= now => Duration::ZERO,
            Some(d) => Duration::from_secs_f64((d - now).min(0.05)),
            None => Duration::from_millis(50),
        };
        match rx.recv_timeout(wait) {
            Ok(hb) => {
                let t = clock.now();
                fd.on_heartbeat(t, hb);
                record(shared, t, fd.output());
            }
            Err(RecvTimeoutError::Timeout) => {
                let t = clock.now();
                // Apply any deadline that elapsed; record at the deadline
                // instant for an exact trace.
                if let Some(d) = fd.next_deadline() {
                    if d <= t {
                        fd.advance(t);
                        record(shared, d.max(start), fd.output());
                        continue;
                    }
                }
                fd.advance(t);
                record(shared, t, fd.output());
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Sender gone (crashed and channel drained): keep driving
                // deadlines until stopped.
                let t = clock.now();
                fd.advance(t);
                record(shared, t, fd.output());
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

fn record(shared: &Shared, t: f64, out: FdOutput) {
    if let Some(rec) = shared.recorder.lock().as_mut() {
        // Guard against clock jitter below recorder resolution.
        if t >= rec.latest_time() {
            rec.record(t, out);
        }
    }
    if let Some(qos) = shared.qos.lock().as_mut() {
        qos.observe(t, out); // clamps backwards time itself
    }
    publish(shared, out);
}

fn publish(shared: &Shared, out: FdOutput) {
    shared
        .output
        .store(u8::from(out == FdOutput::Suspect), Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SkewedClock, WallClock};
    use crate::heartbeater::Heartbeater;
    use crate::transport::{LinkSpec, LossyChannel};
    use fd_core::detectors::{NfdE, NfdS};
    use fd_core::Heartbeat;
    use fd_stats::dist::Constant;

    /// End-to-end: clean 5 ms-delay link, η = 10 ms, NFD-S with δ = 30 ms.
    #[test]
    fn trusts_live_process_then_detects_crash() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.005).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 1);
        let hb = Heartbeater::spawn(0.01, tx, clock.clone()).unwrap();
        let fd = NfdS::new(0.01, 0.03).unwrap();
        let monitor = Monitor::spawn(Box::new(fd), rx, clock.clone()).unwrap();

        // Let it reach steady state and confirm trust.
        std::thread::sleep(Duration::from_millis(120));
        assert!(monitor.output().is_trust(), "should trust a live process");
        assert!(monitor.health().is_healthy());

        // Crash p; detection must follow within δ + η (+ scheduling slop).
        let crash_at = clock.now();
        hb.crash();
        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_suspect(), "crash not detected");

        let trace = monitor.stop();
        let d = fd_metrics::detection_time(&trace, crash_at);
        let elapsed = d.as_seconds();
        assert!(
            elapsed <= 0.04 + 0.05,
            "T_D = {elapsed} vs bound 0.04 (+ slop)"
        );
    }

    #[test]
    fn nfd_e_works_with_skewed_clocks() {
        // Sender's clock is 500 s ahead; NFD-E must not care (it ignores
        // sender timestamps entirely).
        let base = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 2);
        let hb =
            Heartbeater::spawn(0.01, tx, SkewedClock::new(base.clone(), 500.0)).unwrap();
        let fd = NfdE::new(0.01, 0.03, 8).unwrap();
        let monitor = Monitor::spawn(Box::new(fd), rx, base.clone()).unwrap();

        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_trust(), "skew broke NFD-E");
        hb.crash();
        std::thread::sleep(Duration::from_millis(120));
        assert!(monitor.output().is_suspect());
        let trace = monitor.stop();
        assert!(trace.transitions().len() >= 2, "T then S at least");
    }

    #[test]
    fn suspects_when_no_heartbeats_ever_arrive() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(1.0, Box::new(Constant::new(0.001).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 3);
        let hb = Heartbeater::spawn(0.01, tx, clock.clone()).unwrap();
        let monitor =
            Monitor::spawn(Box::new(NfdS::new(0.01, 0.02).unwrap()), rx, clock).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        assert!(monitor.output().is_suspect());
        hb.crash();
        let trace = monitor.stop();
        assert_eq!(trace.transitions().len(), 0, "never trusted");
    }

    #[test]
    fn live_qos_is_queryable_while_running() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 8);
        let hb = Heartbeater::spawn(0.01, tx, clock.clone()).unwrap();
        let monitor =
            Monitor::spawn(Box::new(NfdS::new(0.01, 0.03).unwrap()), rx, clock.clone()).unwrap();

        std::thread::sleep(Duration::from_millis(120));
        let q = monitor.qos().expect("drive loop has published");
        assert!(q.window > 0.0);
        assert!((0.0..=1.0).contains(&q.query_accuracy()));
        // Startup: one Suspect→Trust transition, no completed mistakes.
        assert!(q.t_transitions >= 1, "{q}");
        assert_eq!(q.mean_mistake_recurrence(), None);

        // Crash; once suspicion lands, the live view shows an S-transition
        // and accuracy strictly below 1.
        hb.crash();
        std::thread::sleep(Duration::from_millis(150));
        let q = monitor.qos().unwrap();
        assert!(q.s_transitions >= 1, "{q}");
        assert!(q.query_accuracy() < 1.0);

        // The live view must agree with batch analysis of the final trace.
        let live = monitor.qos().unwrap();
        let trace = monitor.stop();
        let batch = fd_metrics::AccuracyAnalysis::of_trace(&trace);
        assert_eq!(live.s_transitions as usize, batch.mistake_count());
        let dq = (live.query_accuracy() - batch.query_accuracy_probability()).abs();
        assert!(
            dq < 0.05,
            "live {} vs batch {}",
            live.query_accuracy(),
            batch.query_accuracy_probability()
        );
        let _ = trace;
    }

    #[test]
    fn stop_returns_well_formed_trace() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.001).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 4);
        let hb = Heartbeater::spawn(0.005, tx, clock.clone()).unwrap();
        let monitor =
            Monitor::spawn(Box::new(NfdS::new(0.005, 0.02).unwrap()), rx, clock).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        hb.crash();
        let trace = monitor.stop();
        assert!(trace.end() >= trace.start());
        // Output at any queried time is defined.
        let mid = 0.5 * (trace.start() + trace.end());
        let _ = trace.output_at(mid);
    }

    /// A detector that panics on the `n`-th heartbeat, then (as a fresh
    /// instance) behaves exactly like NFD-S.
    struct FaultyDetector {
        inner: NfdS,
        panic_on: u64,
        seen: u64,
    }

    impl FaultyDetector {
        fn new(panic_on: u64) -> Self {
            Self {
                inner: NfdS::new(0.01, 0.04).unwrap(),
                panic_on,
                seen: 0,
            }
        }
    }

    impl fd_core::FailureDetector for FaultyDetector {
        fn advance(&mut self, now: f64) {
            self.inner.advance(now);
        }
        fn on_heartbeat(&mut self, now: f64, hb: Heartbeat) {
            self.seen += 1;
            assert!(self.seen != self.panic_on, "injected detector fault");
            self.inner.on_heartbeat(now, hb);
        }
        fn output(&self) -> FdOutput {
            self.inner.output()
        }
        fn next_deadline(&self) -> Option<f64> {
            self.inner.next_deadline()
        }
        fn name(&self) -> &'static str {
            "Faulty(NFD-S)"
        }
    }

    #[test]
    fn supervised_monitor_recovers_from_detector_panic() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 5);
        let hb = Heartbeater::spawn(0.01, tx, clock.clone()).unwrap();
        // First instance dies on its 3rd heartbeat; the rebuilt one never
        // reaches 200 within this test.
        let factory: DetectorFactory = {
            let first = std::sync::atomic::AtomicBool::new(true);
            Box::new(move || {
                let n = if first.swap(false, Ordering::AcqRel) { 3 } else { 200 };
                Box::new(FaultyDetector::new(n))
            })
        };
        let monitor = Monitor::spawn_supervised(factory, rx, clock.clone(), 2).unwrap();

        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(monitor.restarts(), 1, "one rebuild expected");
        match monitor.health() {
            Health::Degraded { reason } => {
                assert!(reason.contains("injected detector fault"), "reason: {reason}")
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The rebuilt detector trusts the still-live process again.
        assert!(
            monitor.output().is_trust(),
            "supervised monitor failed to recover trust"
        );
        hb.crash();
        let trace = monitor.stop();
        // Trust → (panic) Suspect → Trust again: at least 3 transitions.
        assert!(trace.transitions().len() >= 3, "{:?}", trace.transitions());
    }

    #[test]
    fn supervised_monitor_stops_after_budget_exhausted() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 6);
        let hb = Heartbeater::spawn(0.005, tx, clock.clone()).unwrap();
        // Every instance panics on its first heartbeat; budget of 1.
        let factory: DetectorFactory = Box::new(|| Box::new(FaultyDetector::new(1)));
        let monitor = Monitor::spawn_supervised(factory, rx, clock.clone(), 1).unwrap();

        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(monitor.health(), Health::Stopped);
        assert_eq!(monitor.restarts(), 1);
        // Fail-safe: a dead monitor suspects.
        assert!(monitor.output().is_suspect());
        hb.crash();
        let _ = monitor.stop(); // must not panic
    }

    #[test]
    fn unsupervised_panic_stops_and_suspects() {
        let clock = WallClock::new();
        let spec = LinkSpec::new(0.0, Box::new(Constant::new(0.002).unwrap())).unwrap();
        let (tx, rx, _worker) = LossyChannel::create(spec, 7);
        let hb = Heartbeater::spawn(0.005, tx, clock.clone()).unwrap();
        let monitor =
            Monitor::spawn(Box::new(FaultyDetector::new(1)), rx, clock.clone()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(monitor.health(), Health::Stopped);
        assert!(monitor.output().is_suspect());
        hb.crash();
        let trace = monitor.stop();
        assert!(trace.end() >= trace.start());
    }
}
