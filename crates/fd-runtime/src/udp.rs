//! Real UDP transport for heartbeats.
//!
//! The in-process [`LossyChannel`](crate::transport::LossyChannel)
//! *simulates* the network; this module runs heartbeats over an actual
//! `UdpSocket`, the deployment shape the paper's algorithms target
//! (one-way datagrams, possible loss and reordering, no delivery
//! guarantees). On loopback the kernel rarely drops or delays, so
//! [`UdpSenderConfig`] can additionally inject loss and delay at the
//! sender — either the simple per-datagram knobs or a full scripted
//! [`FaultPlan`] — keeping the wire-protocol and socket code paths honest
//! while still exercising the probabilistic model.
//!
//! Wire format (20 bytes, little-endian): a 4-byte header — magic
//! `[0xFD, 0xB1]`, version `1`, one reserved zero byte — then `seq: u64`
//! and `send_time: f64` (seconds on the sender's clock — exactly the
//! paper's timestamp `S` of §5.2). The header lets the receive pump
//! reject stray datagrams (a mistargeted packet, an old-version sender,
//! or the cluster batch protocol of `fd-cluster`, which uses a different
//! magic) instead of misreading their bytes as a heartbeat.

use crate::error::RuntimeError;
use crate::transport::{Receiver, DEFAULT_CHANNEL_CAPACITY};
use crossbeam::channel;
use fd_core::Heartbeat;
use fd_sim::{FaultInjector, FaultPlan};
use fd_stats::DelayDistribution;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Magic bytes opening every single-heartbeat datagram.
pub const HEARTBEAT_MAGIC: [u8; 2] = [0xFD, 0xB1];

/// Version of the single-heartbeat wire format.
pub const HEARTBEAT_WIRE_VERSION: u8 = 1;

/// Size of one encoded heartbeat datagram: 4-byte header (magic,
/// version, reserved) + `seq` + `send_time`.
pub const DATAGRAM_LEN: usize = 20;

/// Encodes a heartbeat into its 20-byte wire representation.
pub fn encode_heartbeat(hb: Heartbeat) -> [u8; DATAGRAM_LEN] {
    let mut buf = [0u8; DATAGRAM_LEN];
    buf[..2].copy_from_slice(&HEARTBEAT_MAGIC);
    buf[2] = HEARTBEAT_WIRE_VERSION;
    buf[3] = 0; // reserved
    buf[4..12].copy_from_slice(&hb.seq.to_le_bytes());
    buf[12..].copy_from_slice(&hb.send_time.to_le_bytes());
    buf
}

/// Decodes a heartbeat from its wire representation.
///
/// Returns `None` for anything that is not exactly one well-formed
/// current-version heartbeat: wrong length, wrong magic, unknown
/// version, non-zero reserved byte, or a non-finite timestamp. A
/// corrupted or foreign packet must not panic — or silently feed — a
/// monitor.
pub fn decode_heartbeat(buf: &[u8]) -> Option<Heartbeat> {
    if buf.len() != DATAGRAM_LEN
        || buf[..2] != HEARTBEAT_MAGIC
        || buf[2] != HEARTBEAT_WIRE_VERSION
        || buf[3] != 0
    {
        return None;
    }
    let seq = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    let send_time = f64::from_le_bytes(buf[12..20].try_into().ok()?);
    if !send_time.is_finite() {
        return None;
    }
    Some(Heartbeat::new(seq, send_time))
}

/// Optional sender-side fault injection (loopback is too well-behaved to
/// exercise the loss/delay paths otherwise).
pub struct UdpSenderConfig {
    /// Drop each datagram with this probability before it reaches the
    /// socket.
    pub loss_probability: f64,
    /// Extra artificial delay per datagram (sampled, blocking the send
    /// thread), if any.
    pub extra_delay: Option<Box<dyn DelayDistribution>>,
    /// Scripted fault timeline applied on top of the simple knobs (time 0
    /// is the moment of [`UdpHeartbeatSender::connect`]).
    pub fault_plan: Option<FaultPlan>,
    /// RNG seed for the injection.
    pub seed: u64,
}

impl Default for UdpSenderConfig {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            extra_delay: None,
            fault_plan: None,
            seed: 0,
        }
    }
}

impl std::fmt::Debug for UdpSenderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpSenderConfig")
            .field("loss_probability", &self.loss_probability)
            .field("has_extra_delay", &self.extra_delay.is_some())
            .field("has_fault_plan", &self.fault_plan.is_some())
            .finish()
    }
}

/// Sends heartbeats as UDP datagrams.
pub struct UdpHeartbeatSender {
    socket: UdpSocket,
    cfg: UdpSenderConfig,
    injector: Option<FaultInjector>,
    rng: StdRng,
    start: Instant,
}

impl std::fmt::Debug for UdpHeartbeatSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpHeartbeatSender").field("cfg", &self.cfg).finish()
    }
}

impl UdpHeartbeatSender {
    /// Binds an ephemeral local socket and connects it to `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors.
    pub fn connect(peer: SocketAddr, cfg: UdpSenderConfig) -> Result<Self, RuntimeError> {
        let socket =
            UdpSocket::bind(("127.0.0.1", 0)).map_err(|e| RuntimeError::net("bind", e))?;
        socket.connect(peer).map_err(|e| RuntimeError::net("connect", e))?;
        let mut seed = cfg.seed;
        let injector = cfg.fault_plan.as_ref().map(|p| {
            seed ^= p.seed();
            p.injector()
        });
        Ok(Self {
            socket,
            cfg,
            injector,
            rng: StdRng::seed_from_u64(seed),
            start: Instant::now(),
        })
    }

    /// Sends one heartbeat (subject to the configured fault injection).
    /// Returns whether at least one copy was handed to the socket; a
    /// duplicating fault may hand over several.
    ///
    /// Injected delays block the calling thread, so this mirrors the wire
    /// behaviour (later heartbeats cannot overtake).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, hb: Heartbeat) -> io::Result<bool> {
        let base = if self.cfg.loss_probability > 0.0
            && self.rng.random::<f64>() < self.cfg.loss_probability
        {
            None
        } else {
            Some(match &self.cfg.extra_delay {
                Some(d) => d.sample(&mut self.rng).max(0.0),
                None => 0.0,
            })
        };
        let mut deliveries: Vec<f64> = Vec::with_capacity(2);
        match &mut self.injector {
            None => deliveries.extend(base),
            Some(inj) => {
                let now = self.start.elapsed().as_secs_f64();
                inj.apply(now, base, &mut self.rng, &mut deliveries);
            }
        }
        if deliveries.is_empty() {
            return Ok(false);
        }
        deliveries.sort_by(f64::total_cmp);
        for d in deliveries {
            if d > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(d.min(1.0)));
            }
            self.socket.send(&encode_heartbeat(hb))?;
        }
        Ok(true)
    }
}

/// Receiving side: binds a UDP socket and pumps decoded heartbeats into
/// a bounded channel a [`Monitor`](crate::Monitor) can consume.
///
/// The channel is bounded (a stalled monitor must not balloon memory);
/// when it is full the pump drops the datagram and counts it in
/// [`UdpHeartbeatReceiver::overflow_drops`] — to a failure detector a
/// dropped heartbeat is just more message loss, which the algorithms
/// already tolerate.
pub struct UdpHeartbeatReceiver {
    addr: SocketAddr,
    rx: Receiver,
    shutdown: UdpSocket,
    overflow: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for UdpHeartbeatReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpHeartbeatReceiver").field("addr", &self.addr).finish()
    }
}

/// Sentinel datagram that tells the pump thread to exit. Only honored
/// when it arrives from this receiver's own shutdown socket — any other
/// sender carrying the same bytes is treated as noise, so a remote peer
/// cannot spoof a shutdown.
const SHUTDOWN_SENTINEL: [u8; 4] = *b"BYE!";

impl UdpHeartbeatReceiver {
    /// Binds `127.0.0.1:0` and starts the receive pump with the default
    /// channel capacity.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind() -> Result<Self, RuntimeError> {
        Self::bind_with_capacity(DEFAULT_CHANNEL_CAPACITY)
    }

    /// Binds an explicit address (e.g. a non-loopback interface, or a
    /// fixed port) and starts the receive pump with the default channel
    /// capacity.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind_to(addr: SocketAddr) -> Result<Self, RuntimeError> {
        Self::bind_to_with_capacity(addr, DEFAULT_CHANNEL_CAPACITY)
    }

    /// Like [`UdpHeartbeatReceiver::bind`], with an explicit heartbeat
    /// channel capacity (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind_with_capacity(capacity: usize) -> Result<Self, RuntimeError> {
        Self::bind_to_with_capacity(
            SocketAddr::from((std::net::Ipv4Addr::LOCALHOST, 0)),
            capacity,
        )
    }

    /// Binds an explicit address with an explicit heartbeat channel
    /// capacity (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Net`] on socket errors and
    /// [`RuntimeError::Spawn`] if the pump thread cannot start.
    pub fn bind_to_with_capacity(
        addr: SocketAddr,
        capacity: usize,
    ) -> Result<Self, RuntimeError> {
        let socket = UdpSocket::bind(addr).map_err(|e| RuntimeError::net("bind", e))?;
        let addr = socket.local_addr().map_err(|e| RuntimeError::net("local_addr", e))?;
        // The shutdown socket must exist *before* the pump starts, so the
        // pump can verify the sentinel's source address. It binds to the
        // loopback of the same family: that is where the sentinel is sent
        // from (and, for an unspecified bind address, to).
        let shutdown = UdpSocket::bind((loopback_ip(&addr), 0))
            .map_err(|e| RuntimeError::net("bind", e))?;
        let shutdown_addr =
            shutdown.local_addr().map_err(|e| RuntimeError::net("local_addr", e))?;
        let (tx, rx) = channel::bounded(capacity.max(1));
        let overflow = Arc::new(AtomicU64::new(0));
        let pump_overflow = Arc::clone(&overflow);
        let handle = std::thread::Builder::new()
            .name("fd-udp-recv".into())
            .spawn(move || pump(socket, tx, shutdown_addr, pump_overflow))
            .map_err(|e| RuntimeError::spawn("fd-udp-recv", e))?;
        Ok(Self {
            addr,
            rx,
            shutdown,
            overflow,
            handle: Some(handle),
        })
    }

    /// The bound address heartbeaters should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The heartbeat channel (feed it to a
    /// [`Monitor`](crate::Monitor)).
    pub fn receiver(&self) -> Receiver {
        self.rx.clone()
    }

    /// Heartbeats dropped because the channel was full (a stalled
    /// consumer), since bind.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Stops the pump thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(h) = self.handle.take() {
            // An unspecified bind address (0.0.0.0 / ::) is not a valid
            // destination; the loopback of the same family reaches the
            // same socket.
            let mut target = self.addr;
            if target.ip().is_unspecified() {
                target.set_ip(loopback_ip(&target));
            }
            let _ = self.shutdown.send_to(&SHUTDOWN_SENTINEL, target);
            let _ = h.join();
        }
    }
}

/// The loopback address of `addr`'s family.
fn loopback_ip(addr: &SocketAddr) -> std::net::IpAddr {
    match addr {
        SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
        SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
    }
}

impl Drop for UdpHeartbeatReceiver {
    fn drop(&mut self) {
        self.stop();
    }
}

fn pump(
    socket: UdpSocket,
    tx: channel::Sender<Heartbeat>,
    shutdown_addr: SocketAddr,
    overflow: Arc<AtomicU64>,
) {
    let mut buf = [0u8; 64];
    loop {
        match socket.recv_from(&mut buf) {
            Ok((n, src)) => {
                if buf[..n] == SHUTDOWN_SENTINEL {
                    if src == shutdown_addr {
                        return;
                    }
                    continue; // spoofed sentinel from a foreign peer
                }
                if let Some(hb) = decode_heartbeat(&buf[..n]) {
                    match tx.try_send(hb) {
                        Ok(()) => {}
                        Err(channel::TrySendError::Full(_)) => {
                            overflow.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(channel::TrySendError::Disconnected(_)) => {
                            return; // all receivers gone
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_sim::LinkFault;
    use fd_stats::dist::Constant;

    #[test]
    fn codec_roundtrip() {
        let hb = Heartbeat::new(0xDEADBEEF, 1234.5678);
        let buf = encode_heartbeat(hb);
        assert_eq!(decode_heartbeat(&buf), Some(hb));
    }

    #[test]
    fn codec_rejects_garbage() {
        assert_eq!(decode_heartbeat(&[1, 2, 3]), None);
        let mut buf = encode_heartbeat(Heartbeat::new(1, 0.0));
        buf[12..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_heartbeat(&buf), None);
    }

    #[test]
    fn codec_rejects_stray_headers() {
        let good = encode_heartbeat(Heartbeat::new(3, 1.25));
        // Wrong magic.
        let mut buf = good;
        buf[0] = 0x00;
        assert_eq!(decode_heartbeat(&buf), None);
        // Unknown (future) version.
        let mut buf = good;
        buf[2] = HEARTBEAT_WIRE_VERSION + 1;
        assert_eq!(decode_heartbeat(&buf), None);
        // Non-zero reserved byte.
        let mut buf = good;
        buf[3] = 7;
        assert_eq!(decode_heartbeat(&buf), None);
        // Trailing bytes make it some other (longer) protocol's datagram.
        let mut long = good.to_vec();
        long.push(0);
        assert_eq!(decode_heartbeat(&long), None);
        // The pristine datagram still decodes.
        assert_eq!(decode_heartbeat(&good), Some(Heartbeat::new(3, 1.25)));
    }

    mod codec_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every encodable heartbeat survives a wire roundtrip.
            #[test]
            fn prop_roundtrip(seq in 0u64..u64::MAX, ts in -1.0e12f64..1.0e12) {
                let hb = Heartbeat::new(seq, ts);
                prop_assert_eq!(decode_heartbeat(&encode_heartbeat(hb)), Some(hb));
            }

            /// Any corruption of the 4-byte header rejects the datagram —
            /// the property that keeps stray packets out of monitors.
            #[test]
            fn prop_header_corruption_rejected(
                seq in 0u64..u64::MAX,
                ts in -1.0e9f64..1.0e9,
                idx in 0usize..4,
                flip in 1u8..255,
            ) {
                let mut buf = encode_heartbeat(Heartbeat::new(seq, ts));
                buf[idx] ^= flip;
                prop_assert_eq!(decode_heartbeat(&buf), None);
            }

            /// Every truncation is rejected (no partial reads).
            #[test]
            fn prop_truncation_rejected(
                seq in 0u64..u64::MAX,
                ts in -1.0e9f64..1.0e9,
                len in 0usize..DATAGRAM_LEN,
            ) {
                let buf = encode_heartbeat(Heartbeat::new(seq, ts));
                prop_assert_eq!(decode_heartbeat(&buf[..len]), None);
            }
        }
    }

    #[test]
    fn heartbeats_flow_over_loopback() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        for seq in 1..=5u64 {
            assert!(sender.send(Heartbeat::new(seq, seq as f64)).unwrap());
        }
        let rx = receiver.receiver();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).expect("deliver").seq);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        receiver.shutdown();
    }

    #[test]
    fn bind_to_explicit_addr_flows_and_shuts_down() {
        let receiver =
            UdpHeartbeatReceiver::bind_to("127.0.0.1:0".parse().unwrap()).expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        sender.send(Heartbeat::new(1, 0.5)).unwrap();
        let hb = receiver
            .receiver()
            .recv_timeout(Duration::from_secs(2))
            .expect("deliver");
        assert_eq!(hb.seq, 1);
        receiver.shutdown();
    }

    #[test]
    fn bind_to_unspecified_addr_still_shuts_down() {
        // 0.0.0.0 is bindable but not a valid sentinel destination; the
        // shutdown path must reroute via loopback instead of hanging.
        let receiver =
            UdpHeartbeatReceiver::bind_to("0.0.0.0:0".parse().unwrap()).expect("bind");
        let port = receiver.local_addr().port();
        let target: SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();
        let mut sender =
            UdpHeartbeatSender::connect(target, UdpSenderConfig::default()).expect("connect");
        sender.send(Heartbeat::new(2, 0.0)).unwrap();
        let hb = receiver
            .receiver()
            .recv_timeout(Duration::from_secs(2))
            .expect("deliver");
        assert_eq!(hb.seq, 2);
        receiver.shutdown(); // must return promptly, not block on a dead pump
    }

    #[test]
    fn sender_side_loss_injection() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                loss_probability: 1.0,
                seed: 1,
                ..Default::default()
            },
        )
        .expect("connect");
        for seq in 1..=10u64 {
            assert!(!sender.send(Heartbeat::new(seq, 0.0)).unwrap());
        }
        assert!(receiver
            .receiver()
            .recv_timeout(Duration::from_millis(100))
            .is_err());
    }

    #[test]
    fn sender_delay_injection_delays_datagrams() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                extra_delay: Some(Box::new(Constant::new(0.03).unwrap())),
                seed: 2,
                ..Default::default()
            },
        )
        .expect("connect");
        let t0 = std::time::Instant::now();
        sender.send(Heartbeat::new(1, 0.0)).unwrap();
        let hb = receiver
            .receiver()
            .recv_timeout(Duration::from_secs(2))
            .expect("deliver");
        assert_eq!(hb.seq, 1);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn foreign_shutdown_sentinel_is_ignored() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        // A (malicious or confused) peer sends the sentinel bytes from its
        // own socket: the pump must survive and keep delivering.
        let foreign = UdpSocket::bind(("127.0.0.1", 0)).expect("bind foreign");
        foreign
            .send_to(b"BYE!", receiver.local_addr())
            .expect("send sentinel");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        sender.send(Heartbeat::new(7, 1.0)).unwrap();
        let hb = receiver
            .receiver()
            .recv_timeout(Duration::from_secs(2))
            .expect("pump must still be alive after spoofed sentinel");
        assert_eq!(hb.seq, 7);
        receiver.shutdown(); // the genuine shutdown still works
    }

    #[test]
    fn bounded_pump_counts_overflow_drops() {
        let receiver = UdpHeartbeatReceiver::bind_with_capacity(2).expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        // Nobody drains the channel: after 2 buffered heartbeats the rest
        // must be dropped and counted.
        for seq in 1..=30u64 {
            sender.send(Heartbeat::new(seq, 0.0)).unwrap();
        }
        // Loopback delivery is asynchronous; poll until counted.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while receiver.overflow_drops() < 20 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // UDP may legitimately drop some datagrams, but with 30 sends and
        // capacity 2 a healthy majority must overflow.
        assert!(
            receiver.overflow_drops() >= 20,
            "only {} overflow drops",
            receiver.overflow_drops()
        );
        assert_eq!(receiver.receiver().len(), 2);
        receiver.shutdown();
    }

    #[test]
    fn fault_plan_partition_drops_all_datagrams() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let plan = FaultPlan::new(11).link_fault(0.0, LinkFault::Partition);
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                fault_plan: Some(plan),
                ..Default::default()
            },
        )
        .expect("connect");
        for seq in 1..=10u64 {
            assert!(!sender.send(Heartbeat::new(seq, 0.0)).unwrap());
        }
        assert!(receiver
            .receiver()
            .recv_timeout(Duration::from_millis(100))
            .is_err());
        receiver.shutdown();
    }

    #[test]
    fn fault_plan_duplication_sends_extra_copies() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let plan = FaultPlan::new(12).link_fault(
            0.0,
            LinkFault::Duplicate {
                probability: 1.0,
                lag: 0.0,
            },
        );
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                fault_plan: Some(plan),
                ..Default::default()
            },
        )
        .expect("connect");
        for seq in 1..=5u64 {
            assert!(sender.send(Heartbeat::new(seq, 0.0)).unwrap());
        }
        let rx = receiver.receiver();
        let mut got = Vec::new();
        while let Ok(hb) = rx.recv_timeout(Duration::from_millis(200)) {
            got.push(hb.seq);
        }
        // Loopback UDP is reliable in practice: expect ~2 copies of each.
        assert!(got.len() >= 8, "expected duplicated stream, got {got:?}");
        receiver.shutdown();
    }

    #[test]
    fn end_to_end_with_monitor() {
        use crate::clock::{Clock as _, WallClock};
        use crate::monitor::Monitor;
        use fd_core::detectors::NfdE;

        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        let clock = WallClock::new();
        let monitor = Monitor::spawn(
            Box::new(NfdE::new(0.01, 0.05, 8).expect("valid")),
            receiver.receiver(),
            clock.clone(),
        )
        .expect("spawn monitor");
        // Drive heartbeats from this thread at η = 10 ms.
        for seq in 1..=25u64 {
            sender.send(Heartbeat::new(seq, clock.now())).unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(monitor.output().is_trust(), "UDP heartbeats should sustain trust");
        // Stop sending: crash-equivalent; suspicion follows.
        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_suspect());
        let trace = monitor.stop();
        assert!(trace.transitions().len() >= 2);
        receiver.shutdown();
    }
}
