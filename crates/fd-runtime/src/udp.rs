//! Real UDP transport for heartbeats.
//!
//! The in-process [`LossyChannel`](crate::transport::LossyChannel)
//! *simulates* the network; this module runs heartbeats over an actual
//! `UdpSocket`, the deployment shape the paper's algorithms target
//! (one-way datagrams, possible loss and reordering, no delivery
//! guarantees). On loopback the kernel rarely drops or delays, so
//! [`UdpSenderConfig`] can additionally inject loss and delay at the
//! sender — keeping the wire-protocol and socket code paths honest while
//! still exercising the probabilistic model.
//!
//! Wire format (16 bytes, little-endian): `seq: u64`, `send_time: f64`
//! (seconds on the sender's clock — exactly the paper's timestamp `S` of
//! §5.2).

use crate::transport::Receiver;
use crossbeam::channel;
use fd_core::Heartbeat;
use fd_stats::DelayDistribution;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Size of one encoded heartbeat datagram.
pub const DATAGRAM_LEN: usize = 16;

/// Encodes a heartbeat into its 16-byte wire representation.
pub fn encode_heartbeat(hb: Heartbeat) -> [u8; DATAGRAM_LEN] {
    let mut buf = [0u8; DATAGRAM_LEN];
    buf[..8].copy_from_slice(&hb.seq.to_le_bytes());
    buf[8..].copy_from_slice(&hb.send_time.to_le_bytes());
    buf
}

/// Decodes a heartbeat from its wire representation.
///
/// Returns `None` for short datagrams or non-finite timestamps (a
/// corrupted or foreign packet must not panic a monitor).
pub fn decode_heartbeat(buf: &[u8]) -> Option<Heartbeat> {
    if buf.len() < DATAGRAM_LEN {
        return None;
    }
    let seq = u64::from_le_bytes(buf[..8].try_into().ok()?);
    let send_time = f64::from_le_bytes(buf[8..16].try_into().ok()?);
    if !send_time.is_finite() {
        return None;
    }
    Some(Heartbeat::new(seq, send_time))
}

/// Optional sender-side fault injection (loopback is too well-behaved to
/// exercise the loss/delay paths otherwise).
pub struct UdpSenderConfig {
    /// Drop each datagram with this probability before it reaches the
    /// socket.
    pub loss_probability: f64,
    /// Extra artificial delay per datagram (sampled, blocking the send
    /// thread), if any.
    pub extra_delay: Option<Box<dyn DelayDistribution>>,
    /// RNG seed for the injection.
    pub seed: u64,
}

impl Default for UdpSenderConfig {
    fn default() -> Self {
        Self {
            loss_probability: 0.0,
            extra_delay: None,
            seed: 0,
        }
    }
}

impl std::fmt::Debug for UdpSenderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpSenderConfig")
            .field("loss_probability", &self.loss_probability)
            .field("has_extra_delay", &self.extra_delay.is_some())
            .finish()
    }
}

/// Sends heartbeats as UDP datagrams.
pub struct UdpHeartbeatSender {
    socket: UdpSocket,
    cfg: UdpSenderConfig,
    rng: StdRng,
}

impl std::fmt::Debug for UdpHeartbeatSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpHeartbeatSender").field("cfg", &self.cfg).finish()
    }
}

impl UdpHeartbeatSender {
    /// Binds an ephemeral local socket and connects it to `peer`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(peer: SocketAddr, cfg: UdpSenderConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(peer)?;
        let seed = cfg.seed;
        Ok(Self {
            socket,
            cfg,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Sends one heartbeat (subject to the configured fault injection).
    /// Returns whether the datagram was handed to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, hb: Heartbeat) -> io::Result<bool> {
        if self.cfg.loss_probability > 0.0
            && self.rng.random::<f64>() < self.cfg.loss_probability
        {
            return Ok(false);
        }
        if let Some(d) = &self.cfg.extra_delay {
            let delay = d.sample(&mut self.rng);
            if delay > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(delay));
            }
        }
        self.socket.send(&encode_heartbeat(hb))?;
        Ok(true)
    }
}

/// Receiving side: binds a UDP socket and pumps decoded heartbeats into
/// a channel a [`Monitor`](crate::Monitor) can consume.
pub struct UdpHeartbeatReceiver {
    addr: SocketAddr,
    rx: Receiver,
    shutdown: UdpSocket,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for UdpHeartbeatReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpHeartbeatReceiver").field("addr", &self.addr).finish()
    }
}

/// Sentinel datagram that tells the pump thread to exit.
const SHUTDOWN_SENTINEL: [u8; 4] = *b"BYE!";

impl UdpHeartbeatReceiver {
    /// Binds `127.0.0.1:0` and starts the receive pump.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind() -> io::Result<Self> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let addr = socket.local_addr()?;
        let (tx, rx) = channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("fd-udp-recv".into())
            .spawn(move || pump(socket, tx))
            .expect("spawn receive pump");
        let shutdown = UdpSocket::bind(("127.0.0.1", 0))?;
        Ok(Self {
            addr,
            rx,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address heartbeaters should send to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The heartbeat channel (feed it to a
    /// [`Monitor`](crate::Monitor)).
    pub fn receiver(&self) -> Receiver {
        self.rx.clone()
    }

    /// Stops the pump thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = self.shutdown.send_to(&SHUTDOWN_SENTINEL, self.addr);
            let _ = h.join();
        }
    }
}

impl Drop for UdpHeartbeatReceiver {
    fn drop(&mut self) {
        self.stop();
    }
}

fn pump(socket: UdpSocket, tx: channel::Sender<Heartbeat>) {
    let mut buf = [0u8; 64];
    loop {
        match socket.recv(&mut buf) {
            Ok(n) => {
                if buf[..n] == SHUTDOWN_SENTINEL {
                    return;
                }
                if let Some(hb) = decode_heartbeat(&buf[..n]) {
                    if tx.send(hb).is_err() {
                        return; // all receivers gone
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_stats::dist::Constant;

    #[test]
    fn codec_roundtrip() {
        let hb = Heartbeat::new(0xDEADBEEF, 1234.5678);
        let buf = encode_heartbeat(hb);
        assert_eq!(decode_heartbeat(&buf), Some(hb));
    }

    #[test]
    fn codec_rejects_garbage() {
        assert_eq!(decode_heartbeat(&[1, 2, 3]), None);
        let mut buf = encode_heartbeat(Heartbeat::new(1, 0.0));
        buf[8..].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_heartbeat(&buf), None);
    }

    #[test]
    fn heartbeats_flow_over_loopback() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        for seq in 1..=5u64 {
            assert!(sender.send(Heartbeat::new(seq, seq as f64)).unwrap());
        }
        let rx = receiver.receiver();
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).expect("deliver").seq);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        receiver.shutdown();
    }

    #[test]
    fn sender_side_loss_injection() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                loss_probability: 1.0,
                extra_delay: None,
                seed: 1,
            },
        )
        .expect("connect");
        for seq in 1..=10u64 {
            assert!(!sender.send(Heartbeat::new(seq, 0.0)).unwrap());
        }
        assert!(receiver
            .receiver()
            .recv_timeout(Duration::from_millis(100))
            .is_err());
    }

    #[test]
    fn sender_delay_injection_delays_datagrams() {
        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender = UdpHeartbeatSender::connect(
            receiver.local_addr(),
            UdpSenderConfig {
                loss_probability: 0.0,
                extra_delay: Some(Box::new(Constant::new(0.03).unwrap())),
                seed: 2,
            },
        )
        .expect("connect");
        let t0 = std::time::Instant::now();
        sender.send(Heartbeat::new(1, 0.0)).unwrap();
        let hb = receiver
            .receiver()
            .recv_timeout(Duration::from_secs(2))
            .expect("deliver");
        assert_eq!(hb.seq, 1);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn end_to_end_with_monitor() {
        use crate::clock::{Clock as _, WallClock};
        use crate::monitor::Monitor;
        use fd_core::detectors::NfdE;

        let receiver = UdpHeartbeatReceiver::bind().expect("bind");
        let mut sender =
            UdpHeartbeatSender::connect(receiver.local_addr(), UdpSenderConfig::default())
                .expect("connect");
        let clock = WallClock::new();
        let monitor = Monitor::spawn(
            Box::new(NfdE::new(0.01, 0.05, 8).expect("valid")),
            receiver.receiver(),
            clock.clone(),
        );
        // Drive heartbeats from this thread at η = 10 ms.
        for seq in 1..=25u64 {
            sender.send(Heartbeat::new(seq, clock.now())).unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(monitor.output().is_trust(), "UDP heartbeats should sustain trust");
        // Stop sending: crash-equivalent; suspicion follows.
        std::thread::sleep(Duration::from_millis(150));
        assert!(monitor.output().is_suspect());
        let trace = monitor.stop();
        assert!(trace.transitions().len() >= 2);
        receiver.shutdown();
    }
}
