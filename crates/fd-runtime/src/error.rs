//! Typed runtime errors and component health.
//!
//! A failure-detection service must itself survive the failures it
//! detects: thread-spawn and socket errors surface as [`RuntimeError`]
//! values instead of panics, and supervised components report a
//! queryable [`Health`] instead of poisoning their owner.

use std::fmt;
use std::io;

/// An error from the runtime's OS-facing plumbing (thread spawns,
/// sockets). Pure state-machine code in `fd-core` never produces these;
/// they come from the layer that talks to the operating system.
#[derive(Debug)]
pub enum RuntimeError {
    /// An OS thread could not be spawned.
    Spawn {
        /// Name of the thread that failed to start.
        thread: &'static str,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A socket operation failed.
    Net {
        /// The operation that failed (e.g. `"bind"`, `"connect"`).
        op: &'static str,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A durable incarnation counter could not be read or written
    /// (including corruption — restarting at a stale incarnation would
    /// defeat stale-datagram rejection, so it is surfaced, not healed).
    Incarnation {
        /// The underlying I/O or parse failure.
        source: io::Error,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Spawn { thread, source } => {
                write!(f, "failed to spawn thread `{thread}`: {source}")
            }
            RuntimeError::Net { op, source } => {
                write!(f, "socket {op} failed: {source}")
            }
            RuntimeError::Incarnation { source } => {
                write!(f, "incarnation store failed: {source}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Spawn { source, .. }
            | RuntimeError::Net { source, .. }
            | RuntimeError::Incarnation { source } => Some(source),
        }
    }
}

impl RuntimeError {
    pub(crate) fn spawn(thread: &'static str, source: io::Error) -> Self {
        RuntimeError::Spawn { thread, source }
    }

    pub(crate) fn net(op: &'static str, source: io::Error) -> Self {
        RuntimeError::Net { op, source }
    }

    pub(crate) fn incarnation(source: io::Error) -> Self {
        RuntimeError::Incarnation { source }
    }
}

/// Health of a supervised component (a monitor, or a whole watch).
///
/// A panic inside a supervised monitor *degrades* it (the detector is
/// rebuilt and driving resumes, with the panic message retained) rather
/// than killing the service; exhausting the restart budget *stops* it.
/// While degraded or stopped, the component reports `Suspect` — failing
/// safe, since a broken monitor cannot vouch for anyone's liveness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// Operating normally.
    Healthy,
    /// Recovered from at least one failure; the most recent reason.
    Degraded {
        /// Human-readable description of the most recent failure.
        reason: String,
    },
    /// Permanently stopped (restart budget exhausted, or shut down).
    Stopped,
}

impl Health {
    /// Whether the component is fully healthy.
    pub fn is_healthy(&self) -> bool {
        matches!(self, Health::Healthy)
    }

    /// Whether the component is still running (healthy or degraded).
    pub fn is_running(&self) -> bool {
        !matches!(self, Health::Stopped)
    }
}

impl fmt::Display for Health {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Health::Healthy => write!(f, "healthy"),
            Health::Degraded { reason } => write!(f, "degraded: {reason}"),
            Health::Stopped => write!(f, "stopped"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::spawn("fd-monitor", io::Error::other("boom"));
        assert!(e.to_string().contains("fd-monitor"));
        assert!(e.source().is_some());
        let e = RuntimeError::net("bind", io::Error::other("nope"));
        assert!(e.to_string().contains("bind"));
    }

    #[test]
    fn health_predicates() {
        assert!(Health::Healthy.is_healthy());
        assert!(Health::Healthy.is_running());
        let d = Health::Degraded {
            reason: "panic".into(),
        };
        assert!(!d.is_healthy());
        assert!(d.is_running());
        assert!(!Health::Stopped.is_running());
        assert!(d.to_string().contains("panic"));
    }
}
