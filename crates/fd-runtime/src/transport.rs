//! In-process lossy transport with real wall-clock delays.
//!
//! Substitutes for a physical network: each sent heartbeat is dropped
//! with probability `p_L` or scheduled for delivery after an i.i.d. delay
//! drawn from `D` — exactly the §3.1 link law — but the waiting happens
//! in real time on a delivery thread, so monitors experience genuine
//! asynchrony, jitter and reordering.

use crate::error::RuntimeError;
use crossbeam::channel;
use fd_core::Heartbeat;
use fd_sim::{FaultInjector, FaultPlan};
use fd_stats::DelayDistribution;
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default capacity of the delivered-heartbeat channel. Bounded so a
/// stalled monitor caps memory at the channel instead of growing an
/// unbounded queue; overflow drops are counted, not silent.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 1024;

/// Error constructing a [`LinkSpec`]: the loss probability was outside
/// `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BadLossProbability(pub f64);

impl std::fmt::Display for BadLossProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "message loss probability must lie in [0, 1], got {}", self.0)
    }
}

impl std::error::Error for BadLossProbability {}

/// Specification of a link's probabilistic behavior: `(p_L, D)`.
pub struct LinkSpec {
    loss_probability: f64,
    delay: Box<dyn DelayDistribution>,
}

impl std::fmt::Debug for LinkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkSpec")
            .field("loss_probability", &self.loss_probability)
            .field("delay", &self.delay)
            .finish()
    }
}

impl LinkSpec {
    /// Creates a link spec with loss probability `loss_probability` and
    /// delay law `delay`.
    ///
    /// # Errors
    ///
    /// Returns [`BadLossProbability`] if it is outside `[0, 1]`.
    pub fn new(
        loss_probability: f64,
        delay: Box<dyn DelayDistribution>,
    ) -> Result<Self, BadLossProbability> {
        if !(0.0..=1.0).contains(&loss_probability) {
            return Err(BadLossProbability(loss_probability));
        }
        Ok(Self {
            loss_probability,
            delay,
        })
    }

    /// The loss probability `p_L`.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The delay law `D`.
    pub fn delay(&self) -> &dyn DelayDistribution {
        self.delay.as_ref()
    }
}

#[derive(Debug)]
struct Scheduled {
    due: Instant,
    seq: u64,
    hb: Heartbeat,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Default)]
struct SharedQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    closed: bool,
}

struct Inner {
    queue: Mutex<SharedQueue>,
    wake: Condvar,
    /// Heartbeats discarded because the delivery channel was full.
    overflow_drops: AtomicU64,
}

/// The sender's randomness and fault state, behind one lock.
struct SenderState {
    rng: StdRng,
    injector: Option<FaultInjector>,
}

/// Sending half of a [`LossyChannel`].
pub struct Sender {
    inner: Arc<Inner>,
    state: Mutex<SenderState>,
    loss: f64,
    delay: Box<dyn DelayDistribution>,
    /// Origin of the fault plan's timeline.
    start: Instant,
}

/// Receiving half of a [`LossyChannel`]: a plain crossbeam receiver of
/// delivered heartbeats.
pub type Receiver = channel::Receiver<Heartbeat>;

/// An in-process channel that applies the `(p_L, D)` law with real
/// wall-clock delays.
pub struct LossyChannel;

impl LossyChannel {
    /// Creates the channel; returns the sender, the receiver, and the
    /// join handle of the delivery thread (it exits when the sender is
    /// dropped and the queue drains). The delivered-heartbeat channel is
    /// bounded at [`DEFAULT_CHANNEL_CAPACITY`]; see
    /// [`Sender::overflow_drops`].
    ///
    /// Kept panic-free in practice but infallible in signature for the
    /// common path; use [`LossyChannel::build`] to handle spawn errors.
    pub fn create(spec: LinkSpec, seed: u64) -> (Sender, Receiver, std::thread::JoinHandle<()>) {
        Self::build(spec, seed, None, DEFAULT_CHANNEL_CAPACITY)
            .expect("spawn delivery thread")
    }

    /// Creates the channel with a scripted [`FaultPlan`] overlaid on the
    /// link law. The plan's timeline starts when this call returns; its
    /// randomness derives from `plan.seed() ^ seed` so equal seeds
    /// reproduce equal fault realizations.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the delivery thread cannot be
    /// started.
    pub fn create_with_plan(
        spec: LinkSpec,
        seed: u64,
        plan: &FaultPlan,
        capacity: usize,
    ) -> Result<(Sender, Receiver, std::thread::JoinHandle<()>), RuntimeError> {
        Self::build(spec, seed ^ plan.seed(), Some(plan.injector()), capacity)
    }

    /// Like [`LossyChannel::create`], with an explicit heartbeat channel
    /// capacity (clamped to at least 1) and a `Result` instead of a
    /// panic on spawn failure.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Spawn`] if the delivery thread cannot be
    /// started.
    pub fn create_with_capacity(
        spec: LinkSpec,
        seed: u64,
        capacity: usize,
    ) -> Result<(Sender, Receiver, std::thread::JoinHandle<()>), RuntimeError> {
        Self::build(spec, seed, None, capacity)
    }

    fn build(
        spec: LinkSpec,
        seed: u64,
        injector: Option<FaultInjector>,
        capacity: usize,
    ) -> Result<(Sender, Receiver, std::thread::JoinHandle<()>), RuntimeError> {
        let (tx, rx) = channel::bounded(capacity.max(1));
        let inner = Arc::new(Inner {
            queue: Mutex::new(SharedQueue::default()),
            wake: Condvar::new(),
            overflow_drops: AtomicU64::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("fd-lossy-delivery".into())
            .spawn(move || delivery_loop(worker_inner, tx))
            .map_err(|e| RuntimeError::spawn("fd-lossy-delivery", e))?;
        let sender = Sender {
            inner,
            state: Mutex::new(SenderState {
                rng: StdRng::seed_from_u64(seed),
                injector,
            }),
            loss: spec.loss_probability,
            delay: spec.delay,
            start: Instant::now(),
        };
        Ok((sender, rx, handle))
    }
}

fn delivery_loop(inner: Arc<Inner>, tx: channel::Sender<Heartbeat>) {
    let mut queue = inner.queue.lock();
    loop {
        let now = Instant::now();
        // Deliver everything due.
        while queue
            .heap
            .peek()
            .is_some_and(|Reverse(s)| s.due <= now)
        {
            let Reverse(s) = queue.heap.pop().expect("peeked");
            // Bounded channel: a stalled monitor sheds the newest
            // heartbeat (counted) instead of growing memory; a vanished
            // receiver just drains.
            if let Err(channel::TrySendError::Full(_)) = tx.try_send(s.hb) {
                inner.overflow_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
        if queue.closed && queue.heap.is_empty() {
            return;
        }
        match queue.heap.peek() {
            Some(Reverse(s)) => {
                let due = s.due;
                let timeout = due.saturating_duration_since(Instant::now());
                inner.wake.wait_for(&mut queue, timeout.max(Duration::from_micros(50)));
            }
            None => {
                inner.wake.wait(&mut queue);
            }
        }
    }
}

impl Sender {
    /// Sends a heartbeat: drops it with probability `p_L` or schedules
    /// delivery after a fresh delay draw, then applies the active
    /// [`FaultPlan`] segment (if any) — which may drop it, delay it
    /// further, or duplicate it. Returns whether at least one copy was
    /// scheduled (it may still be in flight).
    pub fn send(&self, hb: Heartbeat) -> bool {
        let mut deliveries: Vec<f64> = Vec::with_capacity(2);
        {
            let mut state = self.state.lock();
            let base = if self.loss > 0.0 && state.rng.random::<f64>() < self.loss {
                None
            } else {
                Some(self.delay.sample(&mut state.rng))
            };
            let SenderState { rng, injector } = &mut *state;
            match injector {
                None => deliveries.extend(base),
                Some(inj) => {
                    let t = self.start.elapsed().as_secs_f64();
                    inj.apply(t, base, rng, &mut deliveries);
                }
            }
        }
        if deliveries.is_empty() {
            return false;
        }
        let now = Instant::now();
        let mut queue = self.inner.queue.lock();
        for delay in deliveries {
            queue.heap.push(Reverse(Scheduled {
                due: now + Duration::from_secs_f64(delay.max(0.0)),
                seq: hb.seq,
                hb,
            }));
        }
        drop(queue);
        self.inner.wake.notify_one();
        true
    }

    /// Heartbeats discarded because the bounded delivery channel was
    /// full (a stalled or slow monitor).
    pub fn overflow_drops(&self) -> u64 {
        self.inner.overflow_drops.load(Ordering::Relaxed)
    }
}

impl Drop for Sender {
    fn drop(&mut self) {
        let mut queue = self.inner.queue.lock();
        queue.closed = true;
        drop(queue);
        self.inner.wake.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_stats::dist::Constant;
    use std::time::Duration;

    fn spec(loss: f64, delay_s: f64) -> LinkSpec {
        LinkSpec::new(loss, Box::new(Constant::new(delay_s).unwrap())).unwrap()
    }

    #[test]
    fn delivers_in_order_with_constant_delay() {
        let (tx, rx, worker) = LossyChannel::create(spec(0.0, 0.005), 1);
        for seq in 1..=5u64 {
            tx.send(Heartbeat::new(seq, seq as f64));
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq);
        }
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn delivery_respects_delay_magnitude() {
        let (tx, rx, worker) = LossyChannel::create(spec(0.0, 0.02), 2);
        let t0 = std::time::Instant::now();
        tx.send(Heartbeat::new(1, 1.0)); // due at +20 ms
        let hb = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let waited = t0.elapsed();
        assert_eq!(hb.seq, 1);
        assert!(
            waited >= Duration::from_millis(15),
            "delivered too early: {waited:?}"
        );
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn reorders_when_delays_cross() {
        use fd_stats::dist::Mixture;
        use fd_stats::DelayDistribution;
        // Bimodal law: half the messages take ~1 ms, half ~40 ms. Among
        // many consecutive sends some MUST overtake slower predecessors.
        let law = Mixture::new(vec![
            (0.5, Box::new(Constant::new(0.001).unwrap()) as Box<dyn DelayDistribution>),
            (0.5, Box::new(Constant::new(0.04).unwrap())),
        ])
        .unwrap();
        let (tx, rx, worker) =
            LossyChannel::create(LinkSpec::new(0.0, Box::new(law)).unwrap(), 7);
        for seq in 1..=20u64 {
            tx.send(Heartbeat::new(seq, 0.0));
        }
        let mut order = Vec::new();
        for _ in 0..20 {
            order.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=20).collect::<Vec<_>>(), "all delivered");
        assert_ne!(order, sorted, "expected at least one overtake");
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn lossy_channel_drops_messages() {
        let (tx, rx, worker) = LossyChannel::create(spec(1.0, 0.001), 3);
        for seq in 1..=20u64 {
            assert!(!tx.send(Heartbeat::new(seq, 0.0)));
        }
        assert!(rx.recv_timeout(Duration::from_millis(50)).is_err());
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn partial_loss_statistics() {
        let (tx, rx, worker) = LossyChannel::create(spec(0.5, 0.0001), 4);
        let mut survived = 0;
        let n = 2000;
        for seq in 1..=n {
            if tx.send(Heartbeat::new(seq, 0.0)) {
                survived += 1;
            }
        }
        let frac = survived as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "survival fraction {frac}");
        // All survivors are eventually delivered.
        let mut delivered = 0;
        while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
            delivered += 1;
        }
        assert_eq!(delivered, survived);
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn worker_exits_after_sender_drop() {
        let (tx, _rx, worker) = LossyChannel::create(spec(0.0, 0.001), 5);
        tx.send(Heartbeat::new(1, 0.0));
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn rejects_bad_loss_probability() {
        assert!(LinkSpec::new(1.5, Box::new(Constant::new(0.1).unwrap())).is_err());
        let s = spec(0.25, 0.1);
        assert_eq!(s.loss_probability(), 0.25);
        assert!((s.delay().mean() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bounded_channel_counts_overflow_drops() {
        use fd_sim::FaultPlan;
        // Capacity 4, nobody reading: pushing many due-immediately
        // heartbeats must shed the excess and count every drop.
        let (tx, rx, worker) =
            LossyChannel::create_with_plan(spec(0.0, 0.0), 1, &FaultPlan::new(0), 4).unwrap();
        for seq in 1..=50u64 {
            tx.send(Heartbeat::new(seq, 0.0));
        }
        // Let the delivery thread flush the heap.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            tx.overflow_drops() >= 40,
            "expected ≥40 overflow drops, got {}",
            tx.overflow_drops()
        );
        assert_eq!(rx.len(), 4, "channel holds exactly its capacity");
        drop(tx);
        drop(rx);
        worker.join().unwrap();
    }

    #[test]
    fn fault_plan_partition_blocks_then_heals() {
        use fd_sim::{FaultPlan, LinkFault};
        // Partition for the first 100 ms of the channel's life.
        let plan = FaultPlan::new(3)
            .link_fault(0.0, LinkFault::Partition)
            .link_fault(0.1, LinkFault::Nominal);
        let (tx, rx, worker) =
            LossyChannel::create_with_plan(spec(0.0, 0.001), 7, &plan, 64).unwrap();
        assert!(!tx.send(Heartbeat::new(1, 0.0)), "partitioned send");
        std::thread::sleep(Duration::from_millis(120));
        assert!(tx.send(Heartbeat::new(2, 0.0)), "healed send");
        let got = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(got.seq, 2);
        drop(tx);
        worker.join().unwrap();
    }

    #[test]
    fn fault_plan_duplication_delivers_twice() {
        use fd_sim::{FaultPlan, LinkFault};
        let plan = FaultPlan::new(4).link_fault(
            0.0,
            LinkFault::Duplicate {
                probability: 1.0,
                lag: 0.005,
            },
        );
        let (tx, rx, worker) =
            LossyChannel::create_with_plan(spec(0.0, 0.001), 8, &plan, 64).unwrap();
        assert!(tx.send(Heartbeat::new(9, 1.5)));
        let a = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        let b = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!((a.seq, b.seq), (9, 9), "both copies of the same heartbeat");
        assert_eq!(a.send_time, b.send_time);
        drop(tx);
        worker.join().unwrap();
    }
}
