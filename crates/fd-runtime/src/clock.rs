//! Per-process clocks.
//!
//! The paper's model (§3.1): local clocks are drift-free (they measure
//! intervals exactly) but, in the §6 setting, *not* synchronized — each
//! process's clock may be offset from real time by an unknown constant.
//! [`WallClock`] is the runtime's monotone base clock; [`SkewedClock`]
//! gives a process its own offset view of it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone clock reporting seconds as `f64` (the unit used throughout
/// the workspace).
pub trait Clock: Send + Sync {
    /// Current local time, in seconds. Must be non-decreasing.
    fn now(&self) -> f64;
}

/// Monotone wall clock: seconds elapsed since an origin `Instant`.
///
/// Cloning shares the origin, so clones are mutually synchronized —
/// handing the *same* `WallClock` to both ends models the §3–§5 setting
/// of synchronized clocks.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Arc<Instant>,
}

impl WallClock {
    /// Creates a wall clock whose time 0 is "now".
    pub fn new() -> Self {
        Self {
            origin: Arc::new(Instant::now()),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A clock offset from an inner clock by a constant skew — the §6 model
/// of unsynchronized, drift-free clocks.
#[derive(Debug, Clone)]
pub struct SkewedClock<C> {
    inner: C,
    skew: f64,
}

impl<C: Clock> SkewedClock<C> {
    /// Wraps `inner`, adding `skew` seconds to every reading.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is not finite.
    pub fn new(inner: C, skew: f64) -> Self {
        assert!(skew.is_finite(), "clock skew must be finite");
        Self { inner, skew }
    }

    /// The constant skew.
    pub fn skew(&self) -> f64 {
        self.skew
    }
}

impl<C: Clock> Clock for SkewedClock<C> {
    fn now(&self) -> f64 {
        self.inner.now() + self.skew
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> f64 {
        (**self).now()
    }
}

/// A clock whose offset can be *advanced* while it runs — an NTP step
/// adjustment, the clock-jump fault of a
/// [`FaultPlan`](fd_sim::FaultPlan). Jumps are forward-only so the
/// [`Clock`] contract (non-decreasing readings) holds across a jump.
///
/// Clones share the offset: jumping one handle jumps them all.
#[derive(Debug, Clone)]
pub struct JumpableClock<C> {
    inner: C,
    /// Accumulated offset, stored as `f64` bits for lock-free reads.
    offset_bits: Arc<AtomicU64>,
}

impl<C: Clock> JumpableClock<C> {
    /// Wraps `inner` with an initially-zero adjustable offset.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            offset_bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Advances the clock by `delta` seconds, effective immediately for
    /// every clone.
    ///
    /// # Panics
    ///
    /// Panics unless `delta` is finite and non-negative (a backward jump
    /// would violate the monotonicity every detector deadline relies
    /// on).
    pub fn jump(&self, delta: f64) {
        assert!(
            delta.is_finite() && delta >= 0.0,
            "clock jump must be finite and non-negative, got {delta}"
        );
        let mut cur = self.offset_bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.offset_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The accumulated offset (seconds).
    pub fn offset(&self) -> f64 {
        f64::from_bits(self.offset_bits.load(Ordering::Acquire))
    }
}

impl<C: Clock> Clock for JumpableClock<C> {
    fn now(&self) -> f64 {
        self.inner.now() + self.offset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wall_clock_is_monotone_and_advances() {
        let c = WallClock::new();
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(5));
        let t1 = c.now();
        assert!(t1 > t0);
        assert!(t0 >= 0.0);
    }

    #[test]
    fn clones_share_the_origin() {
        let a = WallClock::new();
        let b = a.clone();
        let (ta, tb) = (a.now(), b.now());
        assert!((ta - tb).abs() < 0.05, "clones diverged: {ta} vs {tb}");
    }

    #[test]
    fn skewed_clock_applies_constant_offset() {
        let base = WallClock::new();
        let skewed = SkewedClock::new(base.clone(), 100.0);
        let diff = skewed.now() - base.now();
        assert!((diff - 100.0).abs() < 0.05, "offset {diff}");
        assert_eq!(skewed.skew(), 100.0);
    }

    #[test]
    fn negative_skew_is_allowed() {
        let base = WallClock::new();
        let skewed = SkewedClock::new(base, -1e6);
        assert!(skewed.now() < 0.0);
    }

    #[test]
    #[should_panic(expected = "skew must be finite")]
    fn rejects_nan_skew() {
        SkewedClock::new(WallClock::new(), f64::NAN);
    }

    #[test]
    fn arc_clock_delegates() {
        let c: Arc<dyn Clock> = Arc::new(WallClock::new());
        assert!(c.now() >= 0.0);
    }

    #[test]
    fn jumpable_clock_jumps_forward_for_all_clones() {
        let base = WallClock::new();
        let a = JumpableClock::new(base.clone());
        let b = a.clone();
        assert_eq!(a.offset(), 0.0);
        a.jump(100.0);
        a.jump(23.0);
        assert_eq!(b.offset(), 123.0);
        let lead = b.now() - base.now();
        assert!((lead - 123.0).abs() < 0.05, "lead {lead}");
    }

    #[test]
    fn jumpable_clock_stays_monotone_across_jump() {
        let c = JumpableClock::new(WallClock::new());
        let t0 = c.now();
        c.jump(5.0);
        assert!(c.now() >= t0 + 5.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jumpable_clock_rejects_backward_jumps() {
        JumpableClock::new(WallClock::new()).jump(-1.0);
    }
}
