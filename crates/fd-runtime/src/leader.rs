//! Leader election on top of the failure-detection service.
//!
//! The paper's introduction motivates failure detectors through the
//! layers built on them — group membership, cluster management,
//! consensus. This module is the canonical downstream consumer: an
//! Ω-style eventual leader elector that picks the smallest-ranked process
//! the detector currently trusts. Its guarantees inherit directly from
//! the detector's QoS:
//!
//! * a crashed leader is replaced within the detector's `T_D` bound;
//! * spurious leader changes happen at most at the detector's mistake
//!   rate `λ_M`, and last at most a mistake duration `T_M` — the reason
//!   the paper calls `λ_M` "important to long-lived applications where
//!   each mistake results in a costly interrupt".

use crate::Service;
use std::fmt;

/// An Ω-style leader elector over a [`Service`].
///
/// Candidates are ranked by the order given at construction; the current
/// leader is the first candidate the underlying failure detectors do not
/// suspect.
#[derive(Debug)]
pub struct LeaderElector {
    /// Candidate names, in priority order.
    ranking: Vec<String>,
}

/// A leadership reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Leadership {
    /// This candidate currently leads.
    Leader(String),
    /// Every candidate is suspected.
    NoLeader,
}

impl fmt::Display for Leadership {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leadership::Leader(n) => write!(f, "leader: {n}"),
            Leadership::NoLeader => write!(f, "no leader (all candidates suspected)"),
        }
    }
}

impl LeaderElector {
    /// Creates an elector over the given priority ranking.
    ///
    /// # Panics
    ///
    /// Panics if `ranking` is empty or contains duplicates.
    pub fn new(ranking: Vec<String>) -> Self {
        assert!(!ranking.is_empty(), "ranking must not be empty");
        let mut dedup = ranking.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ranking.len(), "ranking contains duplicates");
        Self { ranking }
    }

    /// The candidate ranking.
    pub fn ranking(&self) -> &[String] {
        &self.ranking
    }

    /// Reads the current leader from the service's suspicion state.
    /// Candidates the service does not watch count as suspected.
    pub fn current(&self, service: &Service) -> Leadership {
        let status = service.status();
        for name in &self.ranking {
            if status.get(name).is_some_and(|o| o.is_trust()) {
                return Leadership::Leader(name.clone());
            }
        }
        Leadership::NoLeader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, ProcessSpec};
    use fd_core::config::NfdUParams;
    use fd_stats::dist::Exponential;
    use std::time::{Duration, Instant};

    fn watch(svc: &mut Service, name: &str, seed: u64) {
        let link = LinkSpec::new(
            0.0,
            Box::new(Exponential::with_mean(0.001).unwrap()),
        )
        .unwrap();
        svc.watch(
            ProcessSpec::named(name)
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(link)
                .seed(seed),
        )
        .unwrap();
    }

    #[test]
    fn elects_highest_priority_live_candidate_and_fails_over() {
        let mut svc = Service::new();
        for (i, n) in ["n1", "n2", "n3"].iter().enumerate() {
            watch(&mut svc, n, i as u64);
        }
        let elector = LeaderElector::new(vec!["n1".into(), "n2".into(), "n3".into()]);

        // Warm-up: n1 leads.
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(elector.current(&svc), Leadership::Leader("n1".into()));

        // Crash the leader: failover to n2 within the detection bound.
        svc.crash("n1");
        let t0 = Instant::now();
        loop {
            if elector.current(&svc) == Leadership::Leader("n2".into()) {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "failover too slow");
            std::thread::sleep(Duration::from_millis(2));
        }
        svc.shutdown();
    }

    #[test]
    fn no_leader_when_everyone_is_down() {
        let mut svc = Service::new();
        watch(&mut svc, "solo", 9);
        let elector = LeaderElector::new(vec!["solo".into()]);
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(elector.current(&svc), Leadership::Leader("solo".into()));
        svc.crash("solo");
        let t0 = Instant::now();
        loop {
            if elector.current(&svc) == Leadership::NoLeader {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(2));
        }
        svc.shutdown();
    }

    #[test]
    fn unwatched_candidates_are_skipped() {
        let mut svc = Service::new();
        watch(&mut svc, "b", 3);
        let elector = LeaderElector::new(vec!["ghost".into(), "b".into()]);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(elector.current(&svc), Leadership::Leader("b".into()));
        svc.shutdown();
    }

    #[test]
    #[should_panic(expected = "ranking must not be empty")]
    fn rejects_empty_ranking() {
        LeaderElector::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicate_ranking() {
        LeaderElector::new(vec!["a".into(), "a".into()]);
    }

    #[test]
    fn display_and_accessors() {
        let e = LeaderElector::new(vec!["x".into()]);
        assert_eq!(e.ranking(), &["x".to_string()]);
        assert_eq!(Leadership::Leader("x".into()).to_string(), "leader: x");
        assert!(Leadership::NoLeader.to_string().contains("no leader"));
    }
}
