//! Leader election on top of a failure-detection view.
//!
//! The paper's introduction motivates failure detectors through the
//! layers built on them — group membership, cluster management,
//! consensus. This module is the canonical downstream consumer: an
//! Ω-style eventual leader elector that picks the smallest-ranked process
//! the detector currently trusts. Its guarantees inherit directly from
//! the detector's QoS:
//!
//! * a crashed leader is replaced within the detector's `T_D` bound;
//! * spurious leader changes happen at most at the detector's mistake
//!   rate `λ_M`, and last at most a mistake duration `T_M` — the reason
//!   the paper calls `λ_M` "important to long-lived applications where
//!   each mistake results in a costly interrupt".
//!
//! The elector reads suspicion through the [`TrustView`] abstraction, so
//! the same ranking logic runs over a per-watch [`Service`], a plain
//! `HashMap` of outputs (e.g. a recorded snapshot), or `fd-cluster`'s
//! many-peer `ClusterSnapshot` — candidates can be names (`String`) or
//! numeric peer ids.

use crate::Service;
use fd_metrics::FdOutput;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A point-in-time answer to "do you currently trust this candidate?".
///
/// Anything that can answer per-candidate implements this: the runtime
/// [`Service`], a `HashMap<K, FdOutput>` snapshot, or a cluster
/// membership snapshot. Candidates the view does not know count as
/// suspected (fail-safe: an unmonitored process must not lead).
pub trait TrustView<K: ?Sized> {
    /// Whether `candidate` is currently trusted.
    fn is_trusted(&self, candidate: &K) -> bool;
}

impl TrustView<String> for Service {
    fn is_trusted(&self, candidate: &String) -> bool {
        self.output(candidate).is_some_and(|o| o.is_trust())
    }
}

impl<K: Eq + Hash> TrustView<K> for HashMap<K, FdOutput> {
    fn is_trusted(&self, candidate: &K) -> bool {
        self.get(candidate).is_some_and(|o| o.is_trust())
    }
}

impl<K: ?Sized, V: TrustView<K>> TrustView<K> for &V {
    fn is_trusted(&self, candidate: &K) -> bool {
        (**self).is_trusted(candidate)
    }
}

/// An Ω-style leader elector over any [`TrustView`].
///
/// Candidates are ranked by the order given at construction; the current
/// leader is the first candidate the underlying failure detectors do not
/// suspect. The ranking is total and fixed, so the choice among several
/// trusted candidates is deterministic — repeated reads of the same view
/// return the same leader.
#[derive(Debug)]
pub struct LeaderElector<K = String> {
    /// Candidate keys, in priority order.
    ranking: Vec<K>,
}

/// A leadership reading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Leadership<K = String> {
    /// This candidate currently leads.
    Leader(K),
    /// Every candidate is suspected.
    NoLeader,
}

impl<K: fmt::Display> fmt::Display for Leadership<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leadership::Leader(n) => write!(f, "leader: {n}"),
            Leadership::NoLeader => write!(f, "no leader (all candidates suspected)"),
        }
    }
}

impl<K: Clone + PartialEq> LeaderElector<K> {
    /// Creates an elector over the given priority ranking.
    ///
    /// # Panics
    ///
    /// Panics if `ranking` is empty or contains duplicates.
    pub fn new(ranking: Vec<K>) -> Self {
        assert!(!ranking.is_empty(), "ranking must not be empty");
        for (i, k) in ranking.iter().enumerate() {
            assert!(
                !ranking[..i].contains(k),
                "ranking contains duplicates (position {i})"
            );
        }
        Self { ranking }
    }

    /// The candidate ranking.
    pub fn ranking(&self) -> &[K] {
        &self.ranking
    }

    /// Reads the current leader from a suspicion view: the
    /// highest-priority candidate the view trusts. Candidates the view
    /// does not know count as suspected.
    pub fn current<V: TrustView<K>>(&self, view: &V) -> Leadership<K> {
        for k in &self.ranking {
            if view.is_trusted(k) {
                return Leadership::Leader(k.clone());
            }
        }
        Leadership::NoLeader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkSpec, ProcessSpec};
    use fd_core::config::NfdUParams;
    use fd_stats::dist::Exponential;
    use std::time::{Duration, Instant};

    /// Polls until the elector reads `want` (the suite may run under
    /// heavy parallel load, so fixed sleeps are too fragile).
    fn await_leadership(elector: &LeaderElector, svc: &Service, want: &Leadership) {
        let t0 = Instant::now();
        loop {
            if elector.current(svc) == *want {
                return;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "timed out waiting for {want:?} (currently {:?})",
                elector.current(svc)
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    fn watch(svc: &mut Service, name: &str, seed: u64) {
        let link = LinkSpec::new(
            0.0,
            Box::new(Exponential::with_mean(0.001).unwrap()),
        )
        .unwrap();
        svc.watch(
            ProcessSpec::named(name)
                .heartbeat_params(NfdUParams { eta: 0.01, alpha: 0.05 })
                .link(link)
                .seed(seed),
        )
        .unwrap();
    }

    #[test]
    fn elects_highest_priority_live_candidate_and_fails_over() {
        let mut svc = Service::new();
        for (i, n) in ["n1", "n2", "n3"].iter().enumerate() {
            watch(&mut svc, n, i as u64);
        }
        let elector = LeaderElector::new(vec!["n1".into(), "n2".into(), "n3".into()]);

        // Warm-up: n1 leads.
        await_leadership(&elector, &svc, &Leadership::Leader("n1".into()));

        // Crash the leader: failover to n2 within the detection bound.
        svc.crash("n1");
        await_leadership(&elector, &svc, &Leadership::Leader("n2".into()));
        svc.shutdown();
    }

    #[test]
    fn no_leader_when_everyone_is_down() {
        let mut svc = Service::new();
        watch(&mut svc, "solo", 9);
        let elector = LeaderElector::new(vec!["solo".into()]);
        await_leadership(&elector, &svc, &Leadership::Leader("solo".into()));
        svc.crash("solo");
        await_leadership(&elector, &svc, &Leadership::NoLeader);
        svc.shutdown();
    }

    #[test]
    fn unwatched_candidates_are_skipped() {
        let mut svc = Service::new();
        watch(&mut svc, "b", 3);
        let elector = LeaderElector::new(vec!["ghost".into(), "b".into()]);
        await_leadership(&elector, &svc, &Leadership::Leader("b".into()));
        svc.shutdown();
    }

    #[test]
    #[should_panic(expected = "ranking must not be empty")]
    fn rejects_empty_ranking() {
        LeaderElector::<String>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicates")]
    fn rejects_duplicate_ranking() {
        LeaderElector::new(vec!["a".to_string(), "a".to_string()]);
    }

    #[test]
    fn display_and_accessors() {
        let e = LeaderElector::new(vec!["x".to_string()]);
        assert_eq!(e.ranking(), &["x".to_string()]);
        assert_eq!(Leadership::Leader("x".to_string()).to_string(), "leader: x");
        assert_eq!(Leadership::<String>::NoLeader.to_string(), "no leader (all candidates suspected)");
    }

    // --- snapshot-driven elections (the cluster-facing path) ---

    type Snapshot = HashMap<u64, FdOutput>;

    fn snapshot(pairs: &[(u64, FdOutput)]) -> Snapshot {
        pairs.iter().copied().collect()
    }

    #[test]
    fn snapshot_leader_demoted_on_suspicion() {
        let elector = LeaderElector::new(vec![1u64, 2, 3]);
        let all_up = snapshot(&[
            (1, FdOutput::Trust),
            (2, FdOutput::Trust),
            (3, FdOutput::Trust),
        ]);
        assert_eq!(elector.current(&all_up), Leadership::Leader(1));

        // The leader is suspected: demotion to the next ranked peer.
        let leader_down = snapshot(&[
            (1, FdOutput::Suspect),
            (2, FdOutput::Trust),
            (3, FdOutput::Trust),
        ]);
        assert_eq!(elector.current(&leader_down), Leadership::Leader(2));

        // Cascading suspicion walks the ranking.
        let two_down = snapshot(&[
            (1, FdOutput::Suspect),
            (2, FdOutput::Suspect),
            (3, FdOutput::Trust),
        ]);
        assert_eq!(elector.current(&two_down), Leadership::Leader(3));
    }

    #[test]
    fn snapshot_reelection_on_recovery() {
        let elector = LeaderElector::new(vec![1u64, 2]);
        let down = snapshot(&[(1, FdOutput::Suspect), (2, FdOutput::Trust)]);
        assert_eq!(elector.current(&down), Leadership::Leader(2));
        // Peer 1 recovers (detector trusts again): it reclaims leadership
        // because the ranking, not incumbency, decides.
        let recovered = snapshot(&[(1, FdOutput::Trust), (2, FdOutput::Trust)]);
        assert_eq!(elector.current(&recovered), Leadership::Leader(1));
    }

    #[test]
    fn snapshot_ties_break_stably_by_ranking() {
        // Several trusted candidates: the choice is the ranking order,
        // independent of map iteration order and stable across reads.
        let view = snapshot(&[
            (9, FdOutput::Trust),
            (4, FdOutput::Trust),
            (7, FdOutput::Trust),
        ]);
        let elector = LeaderElector::new(vec![7u64, 9, 4]);
        let first = elector.current(&view);
        assert_eq!(first, Leadership::Leader(7));
        for _ in 0..10 {
            assert_eq!(elector.current(&view), first, "leader choice must be stable");
        }
        // A differently-ranked elector over the same view picks its own
        // first trusted candidate — rank decides, not key order.
        let other = LeaderElector::new(vec![4u64, 7, 9]);
        assert_eq!(other.current(&view), Leadership::Leader(4));
    }

    #[test]
    fn snapshot_unknown_candidates_count_as_suspected() {
        let view = snapshot(&[(2, FdOutput::Trust)]);
        let elector = LeaderElector::new(vec![1u64, 2]);
        assert_eq!(elector.current(&view), Leadership::Leader(2));
        let none = LeaderElector::new(vec![5u64, 6]);
        assert_eq!(none.current(&view), Leadership::NoLeader);
    }
}
