//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset this workspace uses: `channel` (multi-producer,
//! multi-consumer, unbounded *and* bounded, with `recv_timeout` and
//! non-blocking `try_send`/`try_recv`) and `thread::scope`. Everything is
//! built on `std::sync` primitives; lock poisoning is swallowed (a
//! panicking peer must not poison an unrelated sender or receiver —
//! exactly the graceful-degradation posture the runtime wants).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        /// `usize::MAX` encodes "unbounded".
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message is enqueued or the last sender leaves.
        readable: Condvar,
        /// Signalled when a message is dequeued or the last receiver leaves.
        writable: Condvar,
    }

    fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, State<T>> {
        shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Error returned by [`Sender::send`]: the receivers are gone; the
    /// message comes back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// The receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all
    /// senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half of a channel. Clonable; the channel disconnects
    /// when the last clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (multi-consumer): each
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Creates a bounded channel holding at most `cap` queued messages.
    ///
    /// Unlike crossbeam, `cap = 0` is not a rendezvous channel; it is
    /// rounded up to 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(cap.max(1))
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = lock(&self.shared);
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while the channel is full. Fails only when all
        /// receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.shared);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.queue.len() < st.capacity {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .writable
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking send: fails fast when full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.shared);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.queue.len() >= st.capacity {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message arrives or every sender is
        /// gone and the queue drains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .readable
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives with a deadline of `timeout` from now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.shared);
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .readable
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.shared);
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            lock(&self.shared).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention
    //! (`scope(|s| …)` returning `Result`, spawn closures taking the
    //! scope), delegating to `std::thread::scope`.

    use std::any::Any;

    /// A handle to a scoped thread, `join`able like crossbeam's.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its panic payload as
        /// an error if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// The scope passed to [`scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope (so it
        /// can spawn further threads), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    f(&Scope { inner: inner_scope })
                }),
            }
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Always `Ok` here: `std::thread::scope` propagates
    /// child panics by resuming them in the parent, so the crossbeam
    /// "collected panics" error arm cannot be produced — callers that
    /// `.expect()` the result are unaffected.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv_fifo() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(7));
    }

    #[test]
    fn disconnect_is_reported_after_drain() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = channel::unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut both = vec![a, b];
        both.sort_unstable();
        assert_eq!(both, vec![1, 2]);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = vec![1, 2, 3];
        let sums: Vec<i32> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| s.spawn(move |_| x * 2))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![2, 4, 6]);
    }
}
