//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no cargo registry
//! cache, so the real `rand` cannot be fetched. This crate provides the
//! API subset the workspace actually uses — `RngCore`, `Rng::random`,
//! `Rng::random_range`, `SeedableRng`, and `rngs::StdRng` — backed by
//! xoshiro256++ seeded through SplitMix64. Streams are deterministic per
//! seed (a property the simulator's reproducibility tests rely on) but
//! are *not* bit-compatible with the real `rand` crate.

/// The core random-number-generator interface (object safe, so
/// `&mut dyn RngCore` works as a trait object).
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the
/// stand-in for rand's `StandardUniform` distribution).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounds the modulo bias far below any
                // statistical tolerance used in this workspace.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                start + draw as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`]
/// (including `dyn RngCore` trait objects).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard uniform distribution.
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG from OS entropy. Offline stand-in: derives the seed
    /// from the system clock (good enough for non-cryptographic
    /// simulation defaults; everything in this workspace seeds
    /// explicitly).
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman–Vigna),
    /// seeded via SplitMix64 exactly as the reference implementation
    /// recommends. Passes BigCrush; period 2²⁵⁶ − 1.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, RngCore as _, SeedableRng as _};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_trait_object() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn super::RngCore = &mut rng;
        let x = dynamic.random::<f64>();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
