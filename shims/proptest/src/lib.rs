//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, tuples and vectors,
//! `prop_map`, the `proptest!` macro (with optional
//! `#![proptest_config(…)]` header), and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated deterministically — the
//! per-test RNG stream is derived from the test's name — so failures
//! reproduce without a persistence file. No shrinking: the failing
//! inputs are reported as-is in the panic message.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// The RNG handed to strategies. Newtyped so the macro surface does not
/// leak the backing generator.
pub struct TestRng(StdRng);

impl TestRng {
    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random::<f64>()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.0.random_range(0..bound)
        }
    }
}

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                // below(span + 1) covers the inclusive upper bound;
                // span + 1 == 0 only for the full u64 domain, where
                // below(0) returning 0 is as good a draw as any.
                *self.start() + rng.below(span.wrapping_add(1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A strategy producing one fixed value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

pub mod bool {
    //! Boolean strategies (`proptest::bool::ANY`).

    use super::{Strategy, TestRng};

    /// Strategy drawing `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

pub mod option {
    //! Option strategies (`proptest::option::of`).

    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the
    /// time (the real crate's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy in `Option` (mirrors `proptest::option::of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};

    /// Size specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a vector strategy (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig::with_cases` is the only knob
/// this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 128 keeps the heavier
        // engine-level properties fast while retaining useful coverage.
        Self { cases: 128 }
    }
}

#[doc(hidden)]
pub enum CaseResult {
    Pass,
    /// Case rejected by `prop_assume!` — does not count as a failure.
    Reject,
    Fail(String),
}

/// Drives one property: `cases` deterministic cases seeded from the test
/// name. Panics (failing the enclosing `#[test]`) on the first failed
/// case, reporting the case index and seed.
#[doc(hidden)]
pub fn run_cases(name: &str, config: &ProptestConfig, mut case: impl FnMut(&mut TestRng) -> CaseResult) {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1_0000_0000_01B3);
    }
    let mut rejects: u32 = 0;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut i = 0;
    while i < config.cases {
        let mut rng = TestRng(StdRng::seed_from_u64(seed.wrapping_add(i as u64 + rejects as u64 * 0x9E37)));
        match case(&mut rng) {
            CaseResult::Pass => i += 1,
            CaseResult::Reject => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "property `{name}`: too many prop_assume! rejections ({rejects})"
                );
            }
            CaseResult::Fail(msg) => {
                panic!("property `{name}` failed at case {i} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u64..100, v in collection::vec(0.0f64..1.0, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __pt_config = $cfg;
            $crate::run_cases(stringify!($name), &__pt_config, |__pt_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __pt_rng);)+
                let mut __pt_case = move || -> $crate::CaseResult {
                    $body
                    $crate::CaseResult::Pass
                };
                __pt_case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng(rand::rngs::StdRng::seed_from_u64(1));
        use rand::SeedableRng as _;
        for _ in 0..1000 {
            let x = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let f = (-1.0f64..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        use rand::SeedableRng as _;
        let mut rng = crate::TestRng(rand::rngs::StdRng::seed_from_u64(2));
        let strat = collection::vec((0.0f64..1.0, 1u64..5), 2..7);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            for (f, i) in &v {
                assert!((0.0..1.0).contains(f));
                assert!((1..5).contains(i));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 1u32..100, v in collection::vec(0usize..10, 0..5)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x > 4);
            prop_assert!(x > 4);
        }

        #[test]
        fn prop_map_transforms(v in collection::vec(0.0f64..10.0, 1..6).prop_map(|mut v| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        })) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::run_cases(
            "always_fails",
            &ProptestConfig::with_cases(3),
            |_rng| crate::CaseResult::Fail("nope".into()),
        );
    }
}
