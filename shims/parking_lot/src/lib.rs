//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a panic while holding a lock
//! does not poison it for other threads (the supervised runtime relies on
//! this: a panicking monitor must not poison state shared with its
//! supervisor).

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutex that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out
    // without unsafe code; invariant: always `Some` outside `Condvar`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` calling
/// convention.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter. Returns whether a thread could have been woken
    /// (std does not report this; `true` keeps callers conservative).
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// A reader–writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic_lock_unlock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_one();
        t.join().unwrap();
    }

    #[test]
    fn panic_while_locked_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("deliberate");
        })
        .join();
        // parking_lot semantics: still lockable, value observable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
