//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with throughput annotations, `Bencher::iter` and
//! `iter_batched_ref` — with a simple adaptive timer instead of
//! criterion's statistical machinery. Good enough to keep the bench
//! targets compiling, running, and producing comparable per-iteration
//! numbers without registry access.

use std::time::{Duration, Instant};

/// Re-export spot for `criterion::black_box` (benches here import
/// `std::hint::black_box` directly, but the alias costs nothing).
pub use std::hint::black_box;

/// How batched setup output is sized; only a hint in this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; drives the measured routine.
pub struct Bencher<'a> {
    stats: &'a mut IterStats,
}

#[derive(Default)]
struct IterStats {
    iterations: u64,
    elapsed: Duration,
}

/// Target measurement budget per benchmark. Kept short: the stand-in is
/// for smoke coverage, not statistics.
const BUDGET: Duration = Duration::from_millis(200);

impl Bencher<'_> {
    /// Times `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.stats.elapsed += t0.elapsed();
            self.stats.iterations += 1;
            if start.elapsed() >= BUDGET {
                break;
            }
        }
    }

    /// Times `routine` over `&mut` state built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let start = Instant::now();
        loop {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.stats.elapsed += t0.elapsed();
            self.stats.iterations += 1;
            if start.elapsed() >= BUDGET {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched_ref`] but passing state by value.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.stats.elapsed += t0.elapsed();
            self.stats.iterations += 1;
            if start.elapsed() >= BUDGET {
                break;
            }
        }
    }
}

fn report(label: &str, stats: &IterStats, throughput: Option<Throughput>) {
    if stats.iterations == 0 {
        println!("{label}: no iterations run");
        return;
    }
    let per_iter = stats.elapsed.as_secs_f64() / stats.iterations as f64;
    let mut line = format!(
        "{label}: {:.3} µs/iter ({} iters)",
        per_iter * 1e6,
        stats.iterations
    );
    if let Some(Throughput::Elements(n)) = throughput {
        let per_elem = per_iter / n as f64;
        line.push_str(&format!(", {:.1} ns/elem", per_elem * 1e9));
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        let rate = n as f64 / per_iter / 1e6;
        line.push_str(&format!(", {rate:.1} MB/s"));
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut stats = IterStats::default();
        f(&mut Bencher { stats: &mut stats });
        report(&format!("{}/{}", self.name, id), &stats, self.throughput);
        self
    }

    /// Ends the group (no-op; groups report as they go).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut stats = IterStats::default();
        f(&mut Bencher { stats: &mut stats });
        report(id, &stats, None);
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("counts", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_and_batched_iter() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1, 2, 3, 4], |v| v.iter().sum::<i32>(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
